use mutree_tree::{NodeKind, UltrametricTree};
use rand::Rng;

use crate::DnaSeq;

/// A nucleotide substitution model applied per site per unit branch length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubstitutionModel {
    /// Jukes–Cantor: every base mutates to each of the three others at the
    /// same `rate`.
    JukesCantor {
        /// Per-site, per-unit-time rate toward each other base.
        rate: f64,
    },
    /// Kimura 2-parameter: transitions (`A↔G`, `C↔T`) and transversions
    /// have different rates, as observed in real mitochondrial DNA.
    Kimura {
        /// Per-site, per-unit-time transition rate.
        transition_rate: f64,
        /// Per-site, per-unit-time rate toward each transversion target.
        transversion_rate: f64,
    },
}

impl SubstitutionModel {
    /// Mutates `base` across a branch of length `t`, returning the new
    /// base. Uses the exact two-state/three-state transition probabilities
    /// per target class (independent-event approximation across the
    /// branch: `p = 1 − exp(−rate · t)` per target).
    fn step<R: Rng + ?Sized>(self, base: u8, t: f64, rng: &mut R) -> u8 {
        // transition partner under A=0, C=1, G=2, T=3: A<->G, C<->T.
        let transition_of = [2u8, 3, 0, 1];
        match self {
            SubstitutionModel::JukesCantor { rate } => {
                let p_any = -(-3.0 * rate * t).exp_m1(); // 1 - e^{-3rt}
                if rng.gen_bool(p_any.clamp(0.0, 1.0)) {
                    // uniform over the other three bases
                    let mut other = rng.gen_range(0..3u8);
                    if other >= base {
                        other += 1;
                    }
                    other
                } else {
                    base
                }
            }
            SubstitutionModel::Kimura {
                transition_rate,
                transversion_rate,
            } => {
                let total = transition_rate + 2.0 * transversion_rate;
                let p_any = -(-total * t).exp_m1();
                if rng.gen_bool(p_any.clamp(0.0, 1.0)) {
                    let r = rng.gen_range(0.0..total);
                    if r < transition_rate {
                        transition_of[base as usize]
                    } else {
                        // one of the two transversion targets
                        let targets: [u8; 2] = match base {
                            0 | 2 => [1, 3], // purine -> pyrimidines
                            _ => [0, 2],     // pyrimidine -> purines
                        };
                        targets[usize::from(r - transition_rate >= transversion_rate)]
                    }
                } else {
                    base
                }
            }
        }
    }
}

/// Parameters for sequence evolution along a tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionParams {
    /// The substitution model.
    pub model: SubstitutionModel,
    /// Per-site, per-unit-time probability-rate of an indel event; each
    /// event deletes the site or inserts a random base after it with equal
    /// probability. Indels are what make *edit* distance (rather than
    /// Hamming distance) the right dissimilarity.
    pub indel_rate: f64,
    /// Lineage rate heterogeneity: each edge's effective length is
    /// multiplied by an independent factor uniform in
    /// `[1 − rate_variation, 1 + rate_variation]`. Zero gives a strict
    /// molecular clock; real mitochondrial lineages evolve at visibly
    /// different speeds, which is what makes their distance matrices only
    /// *near*-ultrametric. Must be in `[0, 1)`.
    pub rate_variation: f64,
}

/// Draws a random clock-like genealogy over taxa `0..n` with the Kingman
/// coalescent: starting from `n` lineages, repeatedly merge a uniform pair;
/// the `k`-lineage stage lasts `Exp(rate · k(k−1)/2)` time. The result is an
/// ultrametric tree (all leaves at height 0).
///
/// # Panics
///
/// Panics when `n < 2` or `rate <= 0`.
pub fn random_coalescent<R: Rng + ?Sized>(n: usize, rate: f64, rng: &mut R) -> UltrametricTree {
    assert!(n >= 2, "need at least two taxa");
    assert!(rate > 0.0, "rate must be positive");
    let mut lineages: Vec<UltrametricTree> = (0..n).map(UltrametricTree::leaf).collect();
    let mut time = 0.0f64;
    while lineages.len() > 1 {
        let k = lineages.len() as f64;
        let lambda = rate * k * (k - 1.0) / 2.0;
        // Exponential waiting time via inverse CDF.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        time += -u.ln() / lambda;
        let a = rng.gen_range(0..lineages.len());
        let mut b = rng.gen_range(0..lineages.len() - 1);
        if b >= a {
            b += 1;
        }
        let (a, b) = (a.min(b), a.max(b));
        let right = lineages.swap_remove(b);
        let left = lineages.swap_remove(a);
        lineages.push(UltrametricTree::join(left, right, time));
    }
    lineages.pop().expect("one lineage remains")
}

/// Draws a uniform random root sequence of the given length.
///
/// # Panics
///
/// Panics when `len == 0`.
pub fn random_root_sequence<R: Rng + ?Sized>(len: usize, rng: &mut R) -> DnaSeq {
    assert!(len > 0, "root sequence must be non-empty");
    DnaSeq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
}

/// Evolves `root` down `tree`, applying substitutions and indels along each
/// edge in proportion to its length. Returns one sequence per taxon,
/// indexed by taxon id (taxa must be `0..leaf_count`).
///
/// # Panics
///
/// Panics when the tree's taxa are not exactly `0..leaf_count`.
pub fn evolve<R: Rng + ?Sized>(
    tree: &UltrametricTree,
    root: &DnaSeq,
    params: &EvolutionParams,
    rng: &mut R,
) -> Vec<DnaSeq> {
    let n = tree.leaf_count();
    assert!(
        tree.taxa().eq(0..n),
        "evolve requires taxa 0..{n} at the leaves"
    );
    assert!(
        (0.0..1.0).contains(&params.rate_variation),
        "rate_variation must be in [0, 1)"
    );
    let mut out: Vec<DnaSeq> = vec![DnaSeq::new(); n];
    // Depth-first from the root, carrying the evolving sequence.
    let mut stack = vec![(tree.root(), root.clone())];
    while let Some((id, seq)) = stack.pop() {
        match tree.kind(id) {
            NodeKind::Leaf(t) => out[t] = seq,
            NodeKind::Internal(a, b) => {
                for child in [a, b] {
                    let mut t = tree.height_of(id) - tree.height_of(child);
                    if params.rate_variation > 0.0 {
                        t *= rng.gen_range(
                            (1.0 - params.rate_variation)..(1.0 + params.rate_variation),
                        );
                    }
                    let mut s = seq.clone();
                    mutate(&mut s, t, params, rng);
                    stack.push((child, s));
                }
            }
        }
    }
    out
}

fn mutate<R: Rng + ?Sized>(seq: &mut DnaSeq, t: f64, params: &EvolutionParams, rng: &mut R) {
    if t <= 0.0 {
        return;
    }
    // Substitutions, in place.
    let codes = seq.codes_mut();
    for base in codes.iter_mut() {
        *base = params.model.step(*base, t, rng);
    }
    // Indels: per-site event probability across the branch.
    if params.indel_rate > 0.0 {
        let p = -(-params.indel_rate * t).exp_m1();
        let mut i = 0;
        while i < codes.len() {
            if codes.len() > 1 && rng.gen_bool(p.clamp(0.0, 1.0)) {
                if rng.gen_bool(0.5) {
                    codes.remove(i);
                    continue; // the next base shifted into position i
                } else {
                    codes.insert(i + 1, rng.gen_range(0..4u8));
                    i += 1; // skip the inserted base
                }
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn coalescent_is_valid_ultrametric() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [2, 3, 7, 20] {
            let t = random_coalescent(n, 1.0, &mut rng);
            assert_eq!(t.leaf_count(), n);
            assert!(t.validate().is_ok());
            assert!(t.height() > 0.0);
            let m = t.distance_matrix();
            assert!(m.is_ultrametric(1e-9));
        }
    }

    #[test]
    fn zero_length_branch_preserves_sequence() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s: DnaSeq = "ACGTACGT".parse().unwrap();
        let params = EvolutionParams {
            model: SubstitutionModel::JukesCantor { rate: 10.0 },
            indel_rate: 10.0,
            rate_variation: 0.0,
        };
        let before = s.clone();
        mutate(&mut s, 0.0, &params, &mut rng);
        assert_eq!(s, before);
    }

    #[test]
    fn long_branch_scrambles_sequence() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = random_root_sequence(500, &mut rng);
        let before = s.clone();
        let params = EvolutionParams {
            model: SubstitutionModel::JukesCantor { rate: 1.0 },
            indel_rate: 0.0,
            rate_variation: 0.0,
        };
        mutate(&mut s, 10.0, &params, &mut rng);
        let diffs = s
            .codes()
            .iter()
            .zip(before.codes())
            .filter(|(a, b)| a != b)
            .count();
        // At saturation ~3/4 of sites differ.
        assert!(diffs > 300, "only {diffs} substitutions");
    }

    #[test]
    fn evolve_returns_one_sequence_per_taxon() {
        let mut rng = StdRng::seed_from_u64(4);
        let tree = random_coalescent(6, 1.0, &mut rng);
        let root = random_root_sequence(100, &mut rng);
        let params = EvolutionParams {
            model: SubstitutionModel::Kimura {
                transition_rate: 0.05,
                transversion_rate: 0.01,
            },
            indel_rate: 0.001,
            rate_variation: 0.0,
        };
        let seqs = evolve(&tree, &root, &params, &mut rng);
        assert_eq!(seqs.len(), 6);
        assert!(seqs.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn close_relatives_are_more_similar() {
        // Two taxa merged near the leaves should be closer to each other
        // than to a taxon that split at the root. Build the tree by hand.
        let mut rng = StdRng::seed_from_u64(9);
        let tree = UltrametricTree::join(
            UltrametricTree::join(UltrametricTree::leaf(0), UltrametricTree::leaf(1), 0.05),
            UltrametricTree::leaf(2),
            3.0,
        );
        let root = random_root_sequence(800, &mut rng);
        let params = EvolutionParams {
            model: SubstitutionModel::JukesCantor { rate: 0.1 },
            indel_rate: 0.0,
            rate_variation: 0.0,
        };
        let seqs = evolve(&tree, &root, &params, &mut rng);
        let d01 = crate::edit_distance(&seqs[0], &seqs[1]);
        let d02 = crate::edit_distance(&seqs[0], &seqs[2]);
        assert!(d01 < d02, "d01 = {d01}, d02 = {d02}");
    }

    #[test]
    fn indels_change_length_eventually() {
        let mut rng = StdRng::seed_from_u64(6);
        let tree = random_coalescent(4, 1.0, &mut rng);
        let root = random_root_sequence(300, &mut rng);
        let params = EvolutionParams {
            model: SubstitutionModel::JukesCantor { rate: 0.01 },
            indel_rate: 0.05,
            rate_variation: 0.0,
        };
        let seqs = evolve(&tree, &root, &params, &mut rng);
        assert!(
            seqs.iter().any(|s| s.len() != root.len()),
            "expected at least one indel across the tree"
        );
    }
}
