use mutree_distmat::DistanceMatrix;

use crate::DnaSeq;

/// Which dissimilarity [`distance_matrix`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceKind {
    /// Levenshtein edit distance — works on unaligned sequences of
    /// different lengths; always a metric. This is the paper's distance.
    Edit,
    /// Proportion of mismatching sites × sequence length (Hamming).
    /// Requires equal lengths.
    PDistance,
    /// Jukes–Cantor corrected distance × sequence length. Requires equal
    /// lengths; saturated pairs (`p ≥ 3/4`) are clamped to a large finite
    /// value.
    JukesCantor,
}

/// Levenshtein edit distance between two sequences: the minimum number of
/// single-base insertions, deletions and substitutions transforming one
/// into the other. Full `O(|a|·|b|)` dynamic program with two rolling rows.
pub fn edit_distance(a: &DnaSeq, b: &DnaSeq) -> usize {
    let (a, b) = (a.codes(), b.codes());
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the inner loop over the shorter sequence.
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut prev: Vec<usize> = (0..=inner.len()).collect();
    let mut cur = vec![0usize; inner.len() + 1];
    for (i, &oa) in outer.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &ib) in inner.iter().enumerate() {
            let sub = prev[j] + usize::from(oa != ib);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[inner.len()]
}

/// Hamming mismatch proportion between equal-length sequences.
///
/// # Panics
///
/// Panics when the lengths differ or are zero.
pub fn p_distance(a: &DnaSeq, b: &DnaSeq) -> f64 {
    assert_eq!(a.len(), b.len(), "p-distance needs aligned sequences");
    assert!(!a.is_empty(), "p-distance needs non-empty sequences");
    let mismatches = a
        .codes()
        .iter()
        .zip(b.codes())
        .filter(|(x, y)| x != y)
        .count();
    mismatches as f64 / a.len() as f64
}

/// Jukes–Cantor corrected evolutionary distance (expected substitutions per
/// site): `−(3/4) ln(1 − 4p/3)`. Saturated pairs clamp to `10.0`.
///
/// # Panics
///
/// Panics when the lengths differ or are zero.
pub fn jc_distance(a: &DnaSeq, b: &DnaSeq) -> f64 {
    let p = p_distance(a, b);
    if p >= 0.75 {
        10.0
    } else {
        -0.75 * (1.0 - 4.0 * p / 3.0).ln()
    }
}

/// Computes the full pairwise distance matrix of a set of sequences.
///
/// # Panics
///
/// Panics when fewer than two sequences are given, or when `kind` requires
/// aligned sequences and lengths differ.
pub fn distance_matrix(seqs: &[DnaSeq], kind: DistanceKind) -> DistanceMatrix {
    assert!(seqs.len() >= 2, "need at least two sequences");
    let n = seqs.len();
    let mut m = DistanceMatrix::zeros(n).expect("n >= 2");
    for i in 1..n {
        for j in 0..i {
            let d = match kind {
                DistanceKind::Edit => edit_distance(&seqs[i], &seqs[j]) as f64,
                DistanceKind::PDistance => p_distance(&seqs[i], &seqs[j]) * seqs[i].len() as f64,
                DistanceKind::JukesCantor => jc_distance(&seqs[i], &seqs[j]) * seqs[i].len() as f64,
            };
            m.set(i, j, d);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance(&s("ACGT"), &s("ACGT")), 0);
        assert_eq!(edit_distance(&s("ACGT"), &s("AGGT")), 1);
        assert_eq!(edit_distance(&s("ACGT"), &s("CGT")), 1);
        assert_eq!(edit_distance(&s("ACGT"), &s("ACGTA")), 1);
        assert_eq!(edit_distance(&s("AAAA"), &s("TTTT")), 4);
        assert_eq!(edit_distance(&DnaSeq::new(), &s("ACG")), 3);
        assert_eq!(edit_distance(&s("ACG"), &DnaSeq::new()), 3);
    }

    #[test]
    fn edit_distance_is_symmetric() {
        let a = s("ACGTACGTAC");
        let b = s("TACGTTACG");
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
    }

    #[test]
    fn edit_distance_classic_example() {
        // kitten -> sitting analogue in DNA letters:
        // GATTACA -> GCATGCA is distance 3.
        assert_eq!(edit_distance(&s("GATTACA"), &s("GCATGCA")), 3);
    }

    #[test]
    fn p_distance_and_jc() {
        let a = s("AAAA");
        let b = s("AAAT");
        assert_eq!(p_distance(&a, &b), 0.25);
        let jc = jc_distance(&a, &b);
        assert!(jc > 0.25); // correction inflates the raw proportion
        assert_eq!(jc_distance(&a, &a), 0.0);
        // Saturation clamps.
        assert_eq!(jc_distance(&s("AAAA"), &s("TTTT")), 10.0);
    }

    #[test]
    fn matrix_from_edit_distances_is_metric() {
        let seqs = vec![s("ACGTACGT"), s("ACGTACGA"), s("TTGTACGT"), s("ACG")];
        let m = distance_matrix(&seqs, DistanceKind::Edit);
        assert!(m.is_metric(1e-9));
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 3), 5.0);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn p_distance_rejects_ragged() {
        p_distance(&s("ACGT"), &s("ACG"));
    }
}
