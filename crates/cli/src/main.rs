//! `mutree` — construct minimum ultrametric evolutionary trees from
//! distance matrices (the project report's "user-friendly tool system").
//!
//! ```text
//! mutree solve  <matrix.phy> [--backend seq|par:N|sim:N] [--all] [--33 off|initial|full]
//! mutree fast   <matrix.phy> [--threshold K] [--linkage max|min|avg]
//! mutree sets   <matrix.phy>
//! mutree heur   <matrix.phy> [--linkage max|avg|min]
//! mutree nj     <matrix.phy>
//! mutree rf     <a.nwk> <b.nwk>
//! mutree gen    random|hmdna <n> [--seed S]
//! mutree serve  <addr> [--queue-depth N] [--serve-workers N] [--no-cache]
//! mutree serve  --send <addr> <matrix.phy> [--decompose] [--timeout SECS]
//! mutree serve  --drain <addr>
//! ```
//!
//! Matrices are PHYLIP square format; `-` reads standard input. Trees are
//! printed as Newick with branch lengths.
//!
//! # Exit codes
//!
//! | code | meaning                                                        |
//! |------|----------------------------------------------------------------|
//! | 0    | success (search ran to proven optimality where applicable)     |
//! | 2    | usage error (bad subcommand, flag, or argument)                |
//! | 3    | input error (unreadable file, malformed matrix or tree)        |
//! | 4    | solver error (no feasible output could be produced)            |
//! | 5    | incomplete but usable: a `--timeout` (or branch budget)        |
//! |      | stopped the search early, `--max-open-nodes` shed frontier     |
//! |      | nodes, or a pipeline stage degraded (retries exhausted); a     |
//! |      | feasible tree was still printed                                |

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use mutree_core::{
    plan_pipeline, plan_solver, solve_plan, BackendSpec, BoundKernel, CheckpointPolicy,
    MemoryBudget, MutError, PruneStrategy, RetryPolicy, SearchMode, SolvePlan, SolveReport,
    SolveRequest, ThreeThree, TraceLevel,
};
use mutree_distmat::{io as mio, DistanceMatrix};
use mutree_graph::CompactSets;
use mutree_tree::{cluster, newick, Linkage};

/// A classified CLI failure; the variant decides the exit code.
enum CliError {
    /// Bad invocation: unknown subcommand, flag or malformed argument (2).
    Usage(String),
    /// Unreadable or malformed input data (3).
    Input(String),
    /// The solver could not produce any feasible output (4).
    Solver(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Usage(_) => ExitCode::from(2),
            CliError::Input(_) => ExitCode::from(3),
            CliError::Solver(_) => ExitCode::from(4),
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Input(m) | CliError::Solver(m) => m,
        }
    }
}

/// Exit code for a search that was interrupted (deadline, budget, …) but
/// still produced a feasible tree.
const EXIT_INCOMPLETE: u8 = 5;

fn usage<S: Into<String>>(msg: S) -> CliError {
    CliError::Usage(msg.into())
}

const USAGE: &str = "\
mutree — minimum ultrametric evolutionary trees (PaCT 2005 reproduction)

USAGE:
  mutree solve <matrix.phy> [--backend seq|par:N|sim:N] [--all] [--33 off|initial|full]
               [--timeout SECS] [--threads N] [--trace-search incumbents|all]
               [--max-open-nodes N] [--checkpoint FILE] [--checkpoint-interval B]
               [--resume FILE] [--cache] [--bound-kernel scalar|lanes]
               [--prune weight|propagate|hybrid]
        Exact minimum ultrametric tree via branch-and-bound.
  mutree fast <matrix.phy> [--threshold K] [--linkage max|min|avg] [--timeout SECS]
               [--threads N] [--trace-search incumbents|all] [--retries N]
               [--max-open-nodes N] [--cache] [--bound-kernel scalar|lanes]
               [--prune weight|propagate|hybrid]
        Near-optimal tree via compact-set decomposition (the fast technique).
  mutree sets <matrix.phy>
        List the compact sets of the distance graph.
  mutree heur <matrix.phy> [--linkage max|avg|min]
        Heuristic tree (UPGMM / UPGMA / single linkage).
  mutree nj <matrix.phy>
        Neighbor-joining tree (unrooted, clock-free baseline).
  mutree rf <a.nwk> <b.nwk>
        Robinson-Foulds distance between two ultrametric Newick trees.
  mutree gen random|hmdna <n> [--seed S]
        Print a synthetic PHYLIP matrix of either workload family.
  mutree serve <addr> [--queue-depth N] [--serve-workers N] [--threads N] [--no-cache]
        Run the solve daemon on <addr> (port 0 picks an ephemeral port;
        the actual address is printed as 'listening on HOST:PORT').
  mutree serve --send <addr> <matrix.phy> [--decompose] [--timeout SECS] [--no-cache]
        Send one solve request to a running daemon and print its report.
  mutree serve --drain <addr>
        Gracefully drain a running daemon: admission stops, queued and
        in-flight requests finish, and its lifetime counters are printed.

  <matrix.phy> is PHYLIP square format; use '-' for standard input.

  --timeout stops the search at a wall-clock deadline; the best tree found
  so far is still printed and the exit code becomes 5.

  --threads N runs on one shared N-thread worker pool: 'fast' fans its
  group and condensed solves out as a task graph on it, and parallel
  branch-and-bound borrows the same workers ('solve' defaults to the
  par:N backend when --backend is not given).

  --trace-search logs structured search events to stderr: 'incumbents'
  prints incumbent updates and stops, 'all' adds every expansion/prune.

  --max-open-nodes caps the live search frontier: past the cap the search
  sheds its worst-bound open nodes, keeps the best tree found and exits 5.

  --checkpoint periodically snapshots the best tree to FILE (crash-safe:
  written atomically, checksummed); --checkpoint-interval sets the branch
  period (default 512). --resume warm-starts from such a snapshot, so an
  interrupted run picks up its incumbent instead of restarting cold.

  --retries re-attempts a panicked or errored pipeline stage up to N
  times (with deterministic exponential backoff) before it degrades to
  the agglomerative fallback.

  --cache enables the content-addressed group-solve cache: a solve whose
  canonical matrix bytes match a stored solve is answered from the cache
  bit for bit, and a near-miss (same quantization bucket) warm-starts
  the search from the stored tree. MUTREE_CACHE=1 enables it for every
  run; the flag wins over the environment.

  --bound-kernel forces the bound arithmetic: 'scalar' reads the packed
  triangle, 'lanes' the blocked solver matrix (default). Both run
  bit-identical searches; MUTREE_FORCE_BOUND_KERNEL applies process-wide.

  --prune picks the prune stages: 'weight' is the weight bound alone,
  'propagate' (default) adds triple constraint propagation at every
  depth, and 'hybrid' propagates on the shallow prefix only. Every
  strategy returns the same optimum bit for bit; MUTREE_FORCE_PRUNE
  applies process-wide and the flag wins over it.

  serve runs requests on one shared worker pool behind a bounded
  earliest-deadline-first queue (--queue-depth, default 64, or
  MUTREE_SERVE_QUEUE_DEPTH; --serve-workers, default 2, or
  MUTREE_SERVE_WORKERS; flags win over the environment) with the
  group-solve cache shared across every connection unless --no-cache.
  There is no SIGTERM hook; drain with 'mutree serve --drain'.

EXIT CODES:
  0  success            2  usage error       3  bad input
  4  solver failed      5  incomplete (early stop, shed nodes, or a
                           degraded stage), but a feasible tree was printed
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            // One line on stderr, machine-scrapeable; the full usage text
            // only for invocation mistakes, not data or solver failures.
            eprintln!("mutree: error: {}", e.message());
            if matches!(e, CliError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            e.exit_code()
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(cmd) = args.first() else {
        return Err(usage("missing subcommand"));
    };
    match cmd.as_str() {
        "solve" => solve(&args[1..]),
        "fast" => fast(&args[1..]),
        "sets" => sets(&args[1..]),
        "heur" => heur(&args[1..]),
        "nj" => nj(&args[1..]),
        "rf" => rf(&args[1..]),
        "gen" => gen(&args[1..]),
        "serve" => serve(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(usage(format!("unknown subcommand {other:?}"))),
    }
}

fn read_matrix(path: &str) -> Result<DistanceMatrix, CliError> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| CliError::Input(format!("reading stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Input(format!("reading {path}: {e}")))?
    };
    mio::parse_phylip(&text).map_err(|e| CliError::Input(format!("parsing {path}: {e}")))
}

/// Parses an optional `--timeout <seconds>` flag into a wall-clock budget.
fn parse_timeout(args: &[String]) -> Result<Option<Duration>, CliError> {
    let Some(spec) = flag_value(args, "--timeout") else {
        // A trailing `--timeout` with nothing after it must not be
        // silently ignored — the user asked for a deadline.
        if args.iter().any(|a| a == "--timeout") {
            return Err(usage("--timeout requires a value in seconds"));
        }
        return Ok(None);
    };
    let secs: f64 = spec
        .parse()
        .map_err(|_| usage(format!("bad timeout {spec:?} (seconds)")))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(usage(format!(
            "timeout must be a non-negative number of seconds, got {spec:?}"
        )));
    }
    Ok(Some(Duration::from_secs_f64(secs)))
}

/// Parses an optional `--threads <N>` flag into a shared worker budget.
fn parse_threads(args: &[String]) -> Result<Option<usize>, CliError> {
    let Some(spec) = flag_value(args, "--threads") else {
        if args.iter().any(|a| a == "--threads") {
            return Err(usage("--threads requires a worker count"));
        }
        return Ok(None);
    };
    let n: usize = spec
        .parse()
        .map_err(|_| usage(format!("bad thread count {spec:?}")))?;
    if n == 0 {
        return Err(usage("need at least one thread"));
    }
    Ok(Some(n))
}

/// Parses an optional `--trace-search <level>` flag.
fn parse_trace(args: &[String]) -> Result<Option<TraceLevel>, CliError> {
    let Some(spec) = flag_value(args, "--trace-search") else {
        if args.iter().any(|a| a == "--trace-search") {
            return Err(usage("--trace-search requires a level (incumbents | all)"));
        }
        return Ok(None);
    };
    TraceLevel::parse(spec)
        .map(Some)
        .ok_or_else(|| usage(format!("unknown trace level {spec:?} (incumbents | all)")))
}

/// Parses an optional numeric flag (`--flag <N>`), rejecting a trailing
/// flag with no value and non-numeric values.
fn parse_count(args: &[String], flag: &str) -> Result<Option<u64>, CliError> {
    let Some(spec) = flag_value(args, flag) else {
        if args.iter().any(|a| a == flag) {
            return Err(usage(format!("{flag} requires a value")));
        }
        return Ok(None);
    };
    spec.parse::<u64>()
        .map(Some)
        .map_err(|_| usage(format!("bad {flag} value {spec:?}")))
}

/// Parses the watchdog cap: `--max-open-nodes <N>` (N ≥ 1).
fn parse_memory_budget(args: &[String]) -> Result<Option<MemoryBudget>, CliError> {
    match parse_count(args, "--max-open-nodes")? {
        None => Ok(None),
        Some(0) => Err(usage("--max-open-nodes must be at least 1")),
        Some(n) => Ok(Some(MemoryBudget::new(n))),
    }
}

/// Parses an optional `--bound-kernel <scalar|lanes>` flag.
fn parse_bound_kernel(args: &[String]) -> Result<Option<BoundKernel>, CliError> {
    let Some(spec) = flag_value(args, "--bound-kernel") else {
        if args.iter().any(|a| a == "--bound-kernel") {
            return Err(usage("--bound-kernel requires a kernel (scalar | lanes)"));
        }
        return Ok(None);
    };
    BoundKernel::parse(spec)
        .map(Some)
        .ok_or_else(|| usage(format!("unknown bound kernel {spec:?} (scalar | lanes)")))
}

/// Parses an optional `--prune <weight|propagate|hybrid>` flag.
fn parse_prune(args: &[String]) -> Result<Option<PruneStrategy>, CliError> {
    let Some(spec) = flag_value(args, "--prune") else {
        if args.iter().any(|a| a == "--prune") {
            return Err(usage(
                "--prune requires a strategy (weight | propagate | hybrid)",
            ));
        }
        return Ok(None);
    };
    PruneStrategy::parse(spec).map(Some).ok_or_else(|| {
        usage(format!(
            "unknown prune strategy {spec:?} (weight | propagate | hybrid)"
        ))
    })
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn solve(args: &[String]) -> Result<ExitCode, CliError> {
    let path = args
        .first()
        .ok_or_else(|| usage("solve needs a matrix file"))?;
    let m = read_matrix(path)?;
    let mut req = SolveRequest::exact(m.clone());
    if let Some(backend) = flag_value(args, "--backend") {
        req = req.backend(parse_backend(backend)?);
    }
    if let Some(threads) = parse_threads(args)? {
        // One shared pool; without an explicit backend, --threads implies
        // the thread-parallel search borrowing from that pool.
        if flag_value(args, "--backend").is_none() {
            req = req.backend(BackendSpec::Parallel { workers: threads });
        }
        req = req.threads(threads);
    }
    req.trace = parse_trace(args)?;
    if args.iter().any(|a| a == "--all") {
        req = req.mode(SearchMode::AllOptimal);
    }
    if let Some(rule) = flag_value(args, "--33") {
        req.three_three = match rule {
            "off" => ThreeThree::Off,
            "initial" => ThreeThree::InitialOnly,
            "full" => ThreeThree::Full,
            other => return Err(usage(format!("unknown 3-3 mode {other:?}"))),
        };
    }
    req.timeout = parse_timeout(args)?;
    req.memory = parse_memory_budget(args)?;
    if let Some(kernel) = parse_bound_kernel(args)? {
        req = req.bound_kernel(kernel);
    }
    if let Some(prune) = parse_prune(args)? {
        req = req.prune(prune);
    }
    if let Some(path) = flag_value(args, "--checkpoint") {
        let mut policy = CheckpointPolicy::new(path);
        if let Some(every) = parse_count(args, "--checkpoint-interval")? {
            policy = policy.interval(every);
        }
        req.checkpoint = Some(policy);
    } else if args.iter().any(|a| a == "--checkpoint") {
        return Err(usage("--checkpoint requires a file path"));
    } else if parse_count(args, "--checkpoint-interval")?.is_some() {
        return Err(usage("--checkpoint-interval needs --checkpoint <file>"));
    }
    if let Some(path) = flag_value(args, "--resume") {
        req.resume = Some(PathBuf::from(path));
    } else if args.iter().any(|a| a == "--resume") {
        return Err(usage("--resume requires a file path"));
    }
    if args.iter().any(|a| a == "--cache") {
        req = req.cache(true);
    }
    // Resolve every environment override in one place, then execute the
    // plan through the engine spine.
    let plan = SolvePlan::resolve_from_env(req);
    let solver = plan_solver(&plan);
    // Which leaf-bitset width the dispatcher picked (or was forced to via
    // MUTREE_FORCE_LEAF_WORDS), against the engine's taxa ceiling.
    let words = solver.dispatch_leaf_words(m.len()).ok_or_else(|| {
        CliError::Solver(format!(
            "matrix has {} taxa; engine limit is {} (use the pipeline: mutree fast)",
            m.len(),
            solver.max_taxa()
        ))
    })?;
    let report = solve_plan(&plan).map_err(|e| match e {
        // A bad snapshot is an input problem, not a search failure.
        MutError::Checkpoint { .. } | MutError::Input { .. } => CliError::Input(e.to_string()),
        e => CliError::Solver(e.to_string()),
    })?;
    println!("weight: {}", report.weight);
    println!(
        "leaf words: {words}  ({} of {} taxa, engine limit {})",
        m.len(),
        64 * words,
        solver.max_taxa()
    );
    // Which bound arithmetic ran (MUTREE_FORCE_BOUND_KERNEL overrides the
    // lane default) and the matrix layout it read.
    let kernel = report.bound_kernel.unwrap_or_default();
    println!(
        "bound kernel: {kernel}  (matrix layout: {})",
        match kernel {
            mutree_core::BoundKernel::Scalar => "packed triangle".to_string(),
            mutree_core::BoundKernel::Lanes =>
                format!("blocked rows, stride {} lanes", m.len().div_ceil(64) * 64),
        }
    );
    // Which prune stages ran (MUTREE_FORCE_PRUNE overrides the
    // full-depth propagation default) and how many nodes the
    // propagation stage cut.
    println!(
        "prune: {}  (propagation pruned: {})",
        report.prune.unwrap_or_default(),
        report.stats.propagation_pruned
    );
    println!(
        "branched: {}  pruned: {}  solutions seen: {}  incumbent updates: {}  peak pool: {}",
        report.stats.branched,
        report.stats.pruned,
        report.stats.solutions_seen,
        report.stats.incumbent_updates,
        report.stats.peak_pool
    );
    // Work-stealing contention counters (all zero for sequential runs):
    // high park counts mean workers starve, high steal/donation counts
    // mean the load balancer is actually moving batches.
    println!(
        "steals: {}  donations: {}  parks: {}",
        report.stats.steals, report.stats.donations, report.stats.parks
    );
    // Supervision counters: watchdog sheds and checkpoint snapshots
    // (retries only move for pipeline runs; printed for line parity).
    println!(
        "retries: {}  nodes shed: {}  checkpoints: {}",
        report.stats.retries, report.stats.nodes_shed, report.stats.checkpoints
    );
    print_cache_stats(&report);
    if let Some(sim) = &report.sim {
        println!(
            "virtual makespan: {:.6}s  messages: {}",
            sim.makespan,
            sim.total_messages()
        );
    }
    for tree in &report.trees {
        println!("{}", newick::to_newick_with(tree, |t| m.label(t)));
    }
    if report.is_complete() {
        Ok(ExitCode::SUCCESS)
    } else {
        // The tree above is feasible but only an upper bound; tell both
        // the human (stderr) and the script (exit code).
        eprintln!(
            "mutree: warning: search stopped early ({}); weight is an upper bound",
            report.stop
        );
        Ok(ExitCode::from(EXIT_INCOMPLETE))
    }
}

/// The cache counters, printed for every solve (all zero when no cache
/// is enabled) so scripts can scrape the line unconditionally.
fn print_cache_stats(report: &SolveReport) {
    println!(
        "cache: hits {}  misses {}  warm-seeds {}",
        report.stats.cache_hits, report.stats.cache_misses, report.stats.cache_warm_seeds
    );
}

fn fast(args: &[String]) -> Result<ExitCode, CliError> {
    let path = args
        .first()
        .ok_or_else(|| usage("fast needs a matrix file"))?;
    let m = read_matrix(path)?;
    let mut req = SolveRequest::decompose(m.clone());
    if let Some(threshold) = flag_value(args, "--threshold") {
        let k: usize = threshold
            .parse()
            .map_err(|_| usage(format!("bad threshold {threshold:?}")))?;
        if k < 2 {
            return Err(usage("threshold must be at least 2"));
        }
        req.threshold = k;
    }
    if let Some(linkage) = flag_value(args, "--linkage") {
        req.linkage = parse_linkage(linkage)?;
    }
    req.timeout = parse_timeout(args)?;
    req.trace = parse_trace(args)?;
    req.memory = parse_memory_budget(args)?;
    if let Some(retries) = parse_count(args, "--retries")? {
        if retries > 0 {
            let retries = u32::try_from(retries)
                .map_err(|_| usage(format!("--retries value {retries} is too large")))?;
            req.retry = Some(RetryPolicy::new().max_attempts(retries + 1));
        }
    }
    if let Some(threads) = parse_threads(args)? {
        // One shared pool for everything: the pipeline fans its stage
        // tasks out on it, and each stage's thread-parallel search
        // borrows the same workers.
        req = req
            .backend(BackendSpec::Parallel { workers: threads })
            .threads(threads);
    }
    if let Some(kernel) = parse_bound_kernel(args)? {
        req = req.bound_kernel(kernel);
    }
    if let Some(prune) = parse_prune(args)? {
        req = req.prune(prune);
    }
    if args.iter().any(|a| a == "--cache") {
        req = req.cache(true);
    }
    let plan = SolvePlan::resolve_from_env(req);
    // Undocumented test hook for the exit-code contract tests: makes
    // every n-taxon stage solve panic, exercising the retry/degrade
    // path. A request cannot express it, so this path assembles the
    // pipeline from the plan's own building blocks instead.
    let report: SolveReport = match parse_count(args, "--inject-panic-taxa")? {
        Some(n) => plan_pipeline(&plan)
            .solver(plan_solver(&plan).panic_on_taxa(n as usize))
            .solve(&m)
            .map_err(|e| CliError::Solver(e.to_string()))?
            .into(),
        None => solve_plan(&plan).map_err(|e| CliError::Solver(e.to_string()))?,
    };
    println!("weight: {}", report.weight);
    println!("compact sets: {}", report.compact_sets.unwrap_or(0));
    let groups: Vec<String> = report
        .groups
        .as_deref()
        .unwrap_or_default()
        .iter()
        .map(|g| {
            let names: Vec<String> = g.iter().map(|&t| m.label(t)).collect();
            format!("{{{}}}", names.join(", "))
        })
        .collect();
    println!("groups: {}", groups.join(" "));
    // Pipeline stage solves all share the plan's prune strategy (the
    // report's own field is per-exact-solve, so read the plan here).
    println!(
        "prune: {}  (propagation pruned: {})",
        plan.prune.unwrap_or_default(),
        report.stats.propagation_pruned
    );
    println!(
        "retries: {}  nodes shed: {}  checkpoints: {}",
        report.stats.retries, report.stats.nodes_shed, report.stats.checkpoints
    );
    print_cache_stats(&report);
    println!("{}", newick::to_newick_with(&report.tree, |t| m.label(t)));
    let slowest: Vec<String> = report
        .slowest_stages(3)
        .iter()
        .map(|t| format!("{} {:.3}s", t.stage, t.seconds))
        .collect();
    eprintln!("mutree: slowest stages: {}", slowest.join(", "));
    if report.is_complete() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "mutree: warning: pipeline degraded ({}; {} stage{} fell back); tree is feasible but heuristic",
            report.stop,
            report.degraded.len(),
            if report.degraded.len() == 1 { "" } else { "s" }
        );
        for d in &report.degraded {
            eprintln!("mutree: degraded stage {}: {}", d.stage, d.reason);
        }
        Ok(ExitCode::from(EXIT_INCOMPLETE))
    }
}

fn sets(args: &[String]) -> Result<ExitCode, CliError> {
    let path = args
        .first()
        .ok_or_else(|| usage("sets needs a matrix file"))?;
    let m = read_matrix(path)?;
    let cs = CompactSets::find(&m);
    if cs.is_empty() {
        println!("no proper compact sets");
        return Ok(ExitCode::SUCCESS);
    }
    for s in cs.iter() {
        let names: Vec<String> = s.members().iter().map(|&t| m.label(t)).collect();
        println!(
            "{{{}}}  Max={}  Min(out)={}",
            names.join(", "),
            s.max_internal(),
            s.min_crossing()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn heur(args: &[String]) -> Result<ExitCode, CliError> {
    let path = args
        .first()
        .ok_or_else(|| usage("heur needs a matrix file"))?;
    let m = read_matrix(path)?;
    let linkage = match flag_value(args, "--linkage") {
        None => Linkage::Maximum,
        Some(l) => parse_linkage(l)?,
    };
    let mut tree = cluster(&m, linkage);
    let weight = tree.fit_heights(&m);
    println!("weight: {weight}");
    println!("feasible: {}", tree.is_feasible_for(&m, 1e-9));
    println!("{}", newick::to_newick_with(&tree, |t| m.label(t)));
    Ok(ExitCode::SUCCESS)
}

fn nj(args: &[String]) -> Result<ExitCode, CliError> {
    let path = args
        .first()
        .ok_or_else(|| usage("nj needs a matrix file"))?;
    let m = read_matrix(path)?;
    let tree = mutree_tree::nj::neighbor_joining(&m);
    println!("total length: {}", tree.total_length());
    println!("mean distortion: {:.6}", tree.mean_distortion(&m));
    println!("{}", tree.to_newick_with(|t| m.label(t)));
    Ok(ExitCode::SUCCESS)
}

fn rf(args: &[String]) -> Result<ExitCode, CliError> {
    let (pa, pb) = match args {
        [a, b, ..] => (a, b),
        _ => return Err(usage("rf needs two Newick files")),
    };
    let read_tree = |path: &str| -> Result<(mutree_tree::UltrametricTree, Vec<String>), CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Input(format!("reading {path}: {e}")))?;
        newick::parse_newick(&text).map_err(|e| CliError::Input(format!("parsing {path}: {e}")))
    };
    let (ta, names_a) = read_tree(pa)?;
    let (mut tb, names_b) = read_tree(pb)?;
    // Align b's taxa to a's by leaf name.
    let mut name_to_a = std::collections::HashMap::new();
    for (taxon, name) in names_a.iter().enumerate() {
        name_to_a.insert(name.clone(), taxon);
    }
    if names_b.len() != names_a.len() || !names_b.iter().all(|n| name_to_a.contains_key(n)) {
        return Err(CliError::Input(
            "the two trees must share the same leaf names".into(),
        ));
    }
    tb.map_taxa(|t| name_to_a[&names_b[t]]);
    let rf = mutree_tree::compare::robinson_foulds(&ta, &tb)
        .map_err(|e| CliError::Input(e.to_string()))?;
    let nrf = mutree_tree::compare::robinson_foulds_normalized(&ta, &tb)
        .map_err(|e| CliError::Input(e.to_string()))?;
    println!("robinson-foulds: {rf}");
    println!("normalized: {nrf:.4}");
    Ok(ExitCode::SUCCESS)
}

fn gen(args: &[String]) -> Result<ExitCode, CliError> {
    let family = args
        .first()
        .ok_or_else(|| usage("gen needs a family (random|hmdna)"))?;
    let n: usize = args
        .get(1)
        .ok_or_else(|| usage("gen needs a species count"))?
        .parse()
        .map_err(|_| usage("species count must be a number"))?;
    if n < 2 {
        return Err(usage("need at least 2 species"));
    }
    let seed: u64 = match flag_value(args, "--seed") {
        None => 0,
        Some(s) => s.parse().map_err(|_| usage(format!("bad seed {s:?}")))?,
    };
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let m = match family.as_str() {
        "random" => {
            let mut m = mutree_distmat::gen::perturbed_ultrametric(n, 50.0, 0.2, &mut rng);
            m.set_labels((0..n).map(|i| format!("sp{i:02}")));
            m
        }
        "hmdna" => mutree_seqgen::hmdna_like_matrix(n, 200, &mut rng),
        other => return Err(usage(format!("unknown family {other:?}"))),
    };
    print!("{}", mio::to_phylip(&m));
    Ok(ExitCode::SUCCESS)
}

/// `mutree serve`: daemon mode, plus the `--send` / `--drain` client
/// modes (so scripts need no second binary to talk to the daemon).
fn serve(args: &[String]) -> Result<ExitCode, CliError> {
    if args.iter().any(|a| a == "--send") {
        return serve_send(args);
    }
    if args.iter().any(|a| a == "--drain") {
        let addr = flag_value(args, "--drain")
            .ok_or_else(|| usage("--drain requires the daemon's address"))?;
        let mut client = mutree_serve::Client::connect(addr)
            .map_err(|e| CliError::Input(format!("connecting to {addr}: {e}")))?;
        let summary = client
            .drain()
            .map_err(|e| CliError::Solver(format!("draining {addr}: {e}")))?;
        println!(
            "drained: served {}  shed {}  cancelled {}  panicked {}  errors {}",
            summary.served, summary.shed, summary.cancelled, summary.panicked, summary.errors
        );
        return Ok(ExitCode::SUCCESS);
    }
    let addr = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| usage("serve needs a listen address (e.g. 127.0.0.1:7465)"))?;
    let queue_depth = parse_count(args, "--queue-depth")?.map(|n| n as usize);
    if queue_depth == Some(0) {
        return Err(usage("--queue-depth must be at least 1"));
    }
    let workers = parse_count(args, "--serve-workers")?.map(|n| n as usize);
    if workers == Some(0) {
        return Err(usage("--serve-workers must be at least 1"));
    }
    // Knob precedence: flag > MUTREE_SERVE_* environment > default.
    let mut config = mutree_serve::ServeConfig::resolve(queue_depth, workers);
    if let Some(threads) = parse_threads(args)? {
        config.threads = threads;
    }
    if args.iter().any(|a| a == "--no-cache") {
        config.cache_default = false;
    }
    let server = mutree_serve::Server::bind(addr.as_str(), config)
        .map_err(|e| CliError::Input(format!("binding {addr}: {e}")))?;
    // The one line scripts parse to learn the ephemeral port.
    println!("listening on {}", server.local_addr());
    let summary = server.join();
    println!(
        "drained: served {}  shed {}  cancelled {}  panicked {}  errors {}",
        summary.served, summary.shed, summary.cancelled, summary.panicked, summary.errors
    );
    Ok(ExitCode::SUCCESS)
}

/// `mutree serve --send`: one request over the socket, report printed in
/// the same shape as the in-process subcommands (same exit-code
/// contract: 0 complete, 5 incomplete-but-feasible).
fn serve_send(args: &[String]) -> Result<ExitCode, CliError> {
    let addr =
        flag_value(args, "--send").ok_or_else(|| usage("--send requires the daemon's address"))?;
    let path = args
        .iter()
        .position(|a| a == "--send")
        .and_then(|i| args.get(i + 2))
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| usage("--send needs a matrix file after the address"))?;
    let m = read_matrix(path)?;
    // The daemon only accepts inline matrices (it never reads
    // server-side paths), so the file is parsed here and shipped.
    let mut req = if args.iter().any(|a| a == "--decompose") {
        SolveRequest::decompose(m.clone())
    } else {
        SolveRequest::exact(m.clone())
    };
    req.timeout = parse_timeout(args)?;
    if args.iter().any(|a| a == "--no-cache") {
        req = req.cache(false);
    }
    let mut client = mutree_serve::Client::connect(addr)
        .map_err(|e| CliError::Input(format!("connecting to {addr}: {e}")))?;
    let report = client.solve(&req).map_err(|e| match e {
        mutree_serve::ClientError::Server(err) => {
            CliError::Solver(format!("daemon refused the request: {err}"))
        }
        other => CliError::Solver(other.to_string()),
    })?;
    println!("weight: {}", report.weight);
    print_cache_stats(&report);
    for tree in &report.trees {
        println!("{}", newick::to_newick_with(tree, |t| m.label(t)));
    }
    if report.is_complete() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "mutree: warning: daemon stopped the search early ({}); weight is an upper bound",
            report.stop
        );
        Ok(ExitCode::from(EXIT_INCOMPLETE))
    }
}

fn parse_backend(spec: &str) -> Result<BackendSpec, CliError> {
    if spec == "seq" {
        return Ok(BackendSpec::Sequential);
    }
    if let Some(workers) = spec.strip_prefix("par:") {
        let w: usize = workers
            .parse()
            .map_err(|_| usage(format!("bad worker count {workers:?}")))?;
        if w == 0 {
            return Err(usage("need at least one worker"));
        }
        return Ok(BackendSpec::Parallel { workers: w });
    }
    if let Some(slaves) = spec.strip_prefix("sim:") {
        let s: usize = slaves
            .parse()
            .map_err(|_| usage(format!("bad slave count {slaves:?}")))?;
        if s == 0 {
            return Err(usage("need at least one slave"));
        }
        return Ok(BackendSpec::SimulatedCluster { slaves: s });
    }
    Err(usage(format!(
        "unknown backend {spec:?} (seq | par:N | sim:N)"
    )))
}

fn parse_linkage(spec: &str) -> Result<Linkage, CliError> {
    match spec {
        "max" => Ok(Linkage::Maximum),
        "min" => Ok(Linkage::Minimum),
        "avg" => Ok(Linkage::Average),
        other => Err(usage(format!(
            "unknown linkage {other:?} (max | min | avg)"
        ))),
    }
}
