//! `mutree` — construct minimum ultrametric evolutionary trees from
//! distance matrices (the project report's "user-friendly tool system").
//!
//! ```text
//! mutree solve  <matrix.phy> [--backend seq|par:N|sim:N] [--all] [--33 off|initial|full]
//! mutree fast   <matrix.phy> [--threshold K] [--linkage max|min|avg]
//! mutree sets   <matrix.phy>
//! mutree heur   <matrix.phy> [--linkage max|avg|min]
//! mutree nj     <matrix.phy>
//! mutree rf     <a.nwk> <b.nwk>
//! mutree gen    random|hmdna <n> [--seed S]
//! ```
//!
//! Matrices are PHYLIP square format; `-` reads standard input. Trees are
//! printed as Newick with branch lengths.

use std::io::Read;
use std::process::ExitCode;

use mutree_core::{CompactPipeline, MutSolver, SearchBackend, SearchMode, ThreeThree};
use mutree_distmat::{io as mio, DistanceMatrix};
use mutree_graph::CompactSets;
use mutree_tree::{cluster, newick, Linkage};

const USAGE: &str = "\
mutree — minimum ultrametric evolutionary trees (PaCT 2005 reproduction)

USAGE:
  mutree solve <matrix.phy> [--backend seq|par:N|sim:N] [--all] [--33 off|initial|full]
        Exact minimum ultrametric tree via branch-and-bound.
  mutree fast <matrix.phy> [--threshold K] [--linkage max|min|avg]
        Near-optimal tree via compact-set decomposition (the fast technique).
  mutree sets <matrix.phy>
        List the compact sets of the distance graph.
  mutree heur <matrix.phy> [--linkage max|avg|min]
        Heuristic tree (UPGMM / UPGMA / single linkage).
  mutree nj <matrix.phy>
        Neighbor-joining tree (unrooted, clock-free baseline).
  mutree rf <a.nwk> <b.nwk>
        Robinson-Foulds distance between two ultrametric Newick trees.
  mutree gen random|hmdna <n> [--seed S]
        Print a synthetic PHYLIP matrix of either workload family.

  <matrix.phy> is PHYLIP square format; use '-' for standard input.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    match cmd.as_str() {
        "solve" => solve(&args[1..]),
        "fast" => fast(&args[1..]),
        "sets" => sets(&args[1..]),
        "heur" => heur(&args[1..]),
        "nj" => nj(&args[1..]),
        "rf" => rf(&args[1..]),
        "gen" => gen(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn read_matrix(path: &str) -> Result<DistanceMatrix, String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    mio::parse_phylip(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn solve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("solve needs a matrix file")?;
    let m = read_matrix(path)?;
    let mut solver = MutSolver::new();
    if let Some(backend) = flag_value(args, "--backend") {
        solver = solver.backend(parse_backend(backend)?);
    }
    if args.iter().any(|a| a == "--all") {
        solver = solver.mode(SearchMode::AllOptimal);
    }
    if let Some(rule) = flag_value(args, "--33") {
        solver = solver.three_three(match rule {
            "off" => ThreeThree::Off,
            "initial" => ThreeThree::InitialOnly,
            "full" => ThreeThree::Full,
            other => return Err(format!("unknown 3-3 mode {other:?}")),
        });
    }
    let sol = solver.solve(&m).map_err(|e| e.to_string())?;
    println!("weight: {}", sol.weight);
    println!(
        "branched: {}  pruned: {}",
        sol.stats.branched, sol.stats.pruned
    );
    if let Some(sim) = &sol.sim {
        println!(
            "virtual makespan: {:.6}s  messages: {}",
            sim.makespan,
            sim.total_messages()
        );
    }
    for tree in &sol.trees {
        println!("{}", newick::to_newick_with(tree, |t| m.label(t)));
    }
    Ok(())
}

fn fast(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("fast needs a matrix file")?;
    let m = read_matrix(path)?;
    let mut pipeline = CompactPipeline::new();
    if let Some(threshold) = flag_value(args, "--threshold") {
        let k: usize = threshold
            .parse()
            .map_err(|_| format!("bad threshold {threshold:?}"))?;
        if k < 2 {
            return Err("threshold must be at least 2".into());
        }
        pipeline = pipeline.threshold(k);
    }
    if let Some(linkage) = flag_value(args, "--linkage") {
        pipeline = pipeline.linkage(parse_linkage(linkage)?);
    }
    let sol = pipeline.solve(&m).map_err(|e| e.to_string())?;
    println!("weight: {}", sol.weight);
    println!("compact sets: {}", sol.compact_sets);
    let groups: Vec<String> = sol
        .groups
        .iter()
        .map(|g| {
            let names: Vec<String> = g.iter().map(|&t| m.label(t)).collect();
            format!("{{{}}}", names.join(", "))
        })
        .collect();
    println!("groups: {}", groups.join(" "));
    println!("{}", newick::to_newick_with(&sol.tree, |t| m.label(t)));
    Ok(())
}

fn sets(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("sets needs a matrix file")?;
    let m = read_matrix(path)?;
    let cs = CompactSets::find(&m);
    if cs.is_empty() {
        println!("no proper compact sets");
        return Ok(());
    }
    for s in cs.iter() {
        let names: Vec<String> = s.members().iter().map(|&t| m.label(t)).collect();
        println!(
            "{{{}}}  Max={}  Min(out)={}",
            names.join(", "),
            s.max_internal(),
            s.min_crossing()
        );
    }
    Ok(())
}

fn heur(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("heur needs a matrix file")?;
    let m = read_matrix(path)?;
    let linkage = match flag_value(args, "--linkage") {
        None => Linkage::Maximum,
        Some(l) => parse_linkage(l)?,
    };
    let mut tree = cluster(&m, linkage);
    let weight = tree.fit_heights(&m);
    println!("weight: {weight}");
    println!("feasible: {}", tree.is_feasible_for(&m, 1e-9));
    println!("{}", newick::to_newick_with(&tree, |t| m.label(t)));
    Ok(())
}

fn nj(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("nj needs a matrix file")?;
    let m = read_matrix(path)?;
    let tree = mutree_tree::nj::neighbor_joining(&m);
    println!("total length: {}", tree.total_length());
    println!("mean distortion: {:.6}", tree.mean_distortion(&m));
    println!("{}", tree.to_newick_with(|t| m.label(t)));
    Ok(())
}

fn rf(args: &[String]) -> Result<(), String> {
    let (pa, pb) = match args {
        [a, b, ..] => (a, b),
        _ => return Err("rf needs two Newick files".into()),
    };
    let read_tree = |path: &str| -> Result<(mutree_tree::UltrametricTree, Vec<String>), String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        newick::parse_newick(&text).map_err(|e| format!("parsing {path}: {e}"))
    };
    let (ta, names_a) = read_tree(pa)?;
    let (mut tb, names_b) = read_tree(pb)?;
    // Align b's taxa to a's by leaf name.
    let mut name_to_a = std::collections::HashMap::new();
    for (taxon, name) in names_a.iter().enumerate() {
        name_to_a.insert(name.clone(), taxon);
    }
    if names_b.len() != names_a.len() || !names_b.iter().all(|n| name_to_a.contains_key(n)) {
        return Err("the two trees must share the same leaf names".into());
    }
    tb.map_taxa(|t| name_to_a[&names_b[t]]);
    let rf = mutree_tree::compare::robinson_foulds(&ta, &tb).map_err(|e| e.to_string())?;
    let nrf =
        mutree_tree::compare::robinson_foulds_normalized(&ta, &tb).map_err(|e| e.to_string())?;
    println!("robinson-foulds: {rf}");
    println!("normalized: {nrf:.4}");
    Ok(())
}

fn gen(args: &[String]) -> Result<(), String> {
    let family = args.first().ok_or("gen needs a family (random|hmdna)")?;
    let n: usize = args
        .get(1)
        .ok_or("gen needs a species count")?
        .parse()
        .map_err(|_| "species count must be a number".to_string())?;
    if n < 2 {
        return Err("need at least 2 species".into());
    }
    let seed: u64 = match flag_value(args, "--seed") {
        None => 0,
        Some(s) => s.parse().map_err(|_| format!("bad seed {s:?}"))?,
    };
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let m = match family.as_str() {
        "random" => {
            let mut m = mutree_distmat::gen::perturbed_ultrametric(n, 50.0, 0.2, &mut rng);
            m.set_labels((0..n).map(|i| format!("sp{i:02}")));
            m
        }
        "hmdna" => mutree_seqgen::hmdna_like_matrix(n, 200, &mut rng),
        other => return Err(format!("unknown family {other:?}")),
    };
    print!("{}", mio::to_phylip(&m));
    Ok(())
}

fn parse_backend(spec: &str) -> Result<SearchBackend, String> {
    if spec == "seq" {
        return Ok(SearchBackend::Sequential);
    }
    if let Some(workers) = spec.strip_prefix("par:") {
        let w: usize = workers
            .parse()
            .map_err(|_| format!("bad worker count {workers:?}"))?;
        if w == 0 {
            return Err("need at least one worker".into());
        }
        return Ok(SearchBackend::Parallel { workers: w });
    }
    if let Some(slaves) = spec.strip_prefix("sim:") {
        let s: usize = slaves
            .parse()
            .map_err(|_| format!("bad slave count {slaves:?}"))?;
        if s == 0 {
            return Err("need at least one slave".into());
        }
        return Ok(SearchBackend::SimulatedCluster {
            spec: mutree_clustersim::ClusterSpec::with_slaves(s),
        });
    }
    Err(format!("unknown backend {spec:?} (seq | par:N | sim:N)"))
}

fn parse_linkage(spec: &str) -> Result<Linkage, String> {
    match spec {
        "max" => Ok(Linkage::Maximum),
        "min" => Ok(Linkage::Minimum),
        "avg" => Ok(Linkage::Average),
        other => Err(format!("unknown linkage {other:?} (max | min | avg)")),
    }
}
