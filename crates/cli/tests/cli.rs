//! End-to-end tests of the `mutree` command-line tool.

use std::io::Write;
use std::process::{Command, Stdio};

fn mutree() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mutree"))
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = mutree().args(args).output().expect("spawn mutree");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn run_with_stdin(args: &[&str], input: &str) -> (String, bool) {
    let mut child = mutree()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mutree");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

const MATRIX: &str = "\
4
alpha  0 2 8 8
beta   2 0 8 8
gamma  8 8 0 4
delta  8 8 4 0
";

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("compact-set"));
}

#[test]
fn missing_subcommand_fails_with_usage() {
    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("missing subcommand"));
}

#[test]
fn solve_reads_stdin_and_prints_newick() {
    let (stdout, ok) = run_with_stdin(&["solve", "-"], MATRIX);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("weight: 11"));
    assert!(stdout.contains("alpha"));
    assert!(stdout.contains(";"));
    // Diagnostics name both the leaf width and the bound kernel in play
    // (exact values depend on the ambient MUTREE_FORCE_* hooks CI pins,
    // so assert the lines, not the dispatch).
    assert!(stdout.contains("leaf words: "), "{stdout}");
    assert!(stdout.contains("bound kernel: "), "{stdout}");
    assert!(stdout.contains("matrix layout: "), "{stdout}");
    assert!(stdout.contains("prune: "), "{stdout}");
}

#[test]
fn solve_forced_kernel_and_prune_agree_with_defaults() {
    let (base, ok) = run_with_stdin(&["solve", "-"], MATRIX);
    assert!(ok);
    let weight = base.lines().find(|l| l.starts_with("weight:")).unwrap();
    for flags in [
        ["--bound-kernel", "scalar"],
        ["--prune", "weight"],
        ["--prune", "propagate"],
    ] {
        let (stdout, ok) = run_with_stdin(&["solve", "-", flags[0], flags[1]], MATRIX);
        assert!(ok, "{flags:?}: {stdout}");
        assert!(stdout.contains(weight), "{flags:?}: {stdout}");
    }
    let (stdout, ok) = run_with_stdin(&["solve", "-", "--prune", "propagate"], MATRIX);
    assert!(ok);
    assert!(stdout.contains("prune: propagate"), "{stdout}");
}

/// Runs with `MATRIX` on stdin and returns (stderr, exit code): for
/// asserting the usage-error contract on flag values.
fn run_stdin_stderr(args: &[&str]) -> (String, Option<i32>) {
    let mut child = mutree()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mutree");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(MATRIX.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn solve_rejects_bad_prune_strategy() {
    let (stderr, code) = run_stdin_stderr(&["solve", "-", "--prune", "psychic"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("unknown prune strategy"), "{stderr}");
}

#[test]
fn solve_rejects_bad_bound_kernel() {
    let (stderr, code) = run_stdin_stderr(&["solve", "-", "--bound-kernel", "gpu"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("unknown bound kernel"), "{stderr}");
}

#[test]
fn solve_all_enumerates_cooptima() {
    let (stdout, ok) = run_with_stdin(&["solve", "-", "--all"], MATRIX);
    assert!(ok);
    // This matrix has a unique optimum; the flag still works.
    assert_eq!(stdout.matches(';').count(), 1);
}

#[test]
fn solve_with_simulated_backend_reports_makespan() {
    let (stdout, ok) = run_with_stdin(&["solve", "-", "--backend", "sim:4"], MATRIX);
    assert!(ok);
    assert!(stdout.contains("virtual makespan"));
}

#[test]
fn solve_rejects_bad_backend() {
    let (_, stderr, ok) = run(&["solve", "/nonexistent", "--backend", "gpu"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
}

#[test]
fn fast_prints_groups() {
    let (stdout, ok) = run_with_stdin(&["fast", "-", "--threshold", "2"], MATRIX);
    assert!(ok);
    assert!(stdout.contains("groups:"));
    assert!(stdout.contains("weight:"));
    assert!(stdout.contains("prune: "), "{stdout}");
}

#[test]
fn fast_accepts_kernel_and_prune_flags() {
    let (stdout, ok) = run_with_stdin(
        &["fast", "-", "--bound-kernel", "scalar", "--prune", "weight"],
        MATRIX,
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("prune: weight"), "{stdout}");
}

#[test]
fn sets_lists_compact_sets() {
    let (stdout, ok) = run_with_stdin(&["sets", "-"], MATRIX);
    assert!(ok);
    assert!(stdout.contains("alpha, beta"));
    assert!(stdout.contains("Max="));
}

#[test]
fn heur_reports_feasibility() {
    let (stdout, ok) = run_with_stdin(&["heur", "-", "--linkage", "max"], MATRIX);
    assert!(ok);
    assert!(stdout.contains("feasible: true"));
}

#[test]
fn gen_produces_parsable_phylip() {
    let (stdout, _, ok) = run(&["gen", "hmdna", "6", "--seed", "9"]);
    assert!(ok);
    let m = mutree_distmat::io::parse_phylip(&stdout).expect("generated matrix parses");
    assert_eq!(m.len(), 6);
    // Determinism: same seed, same matrix.
    let (again, _, _) = run(&["gen", "hmdna", "6", "--seed", "9"]);
    assert_eq!(stdout, again);
}

#[test]
fn gen_random_family_works_too() {
    let (stdout, _, ok) = run(&["gen", "random", "5"]);
    assert!(ok);
    let m = mutree_distmat::io::parse_phylip(&stdout).unwrap();
    // PHYLIP output carries 6 decimals, so a triangle the metric closure
    // left exactly tight can be off by ~1e-6 after rounding.
    assert!(m.is_metric(1e-5));
}

#[test]
fn nj_prints_unrooted_tree() {
    let (stdout, ok) = run_with_stdin(&["nj", "-"], MATRIX);
    assert!(ok);
    assert!(stdout.contains("total length:"));
    assert!(stdout.contains("mean distortion: 0.000000")); // ultrametric input
    assert!(stdout.contains("alpha"));
}

#[test]
fn rf_compares_two_trees() {
    let dir = std::env::temp_dir().join(format!("mutree-rf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.nwk");
    let b = dir.join("b.nwk");
    std::fs::write(&a, "((x:1,y:1):3,(z:2,w:2):2);").unwrap();
    std::fs::write(&b, "((x:1,z:1):3,(y:2,w:2):2);").unwrap();
    let (stdout, _, ok) = run(&["rf", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("robinson-foulds: 4"));
    assert!(stdout.contains("normalized: 1.0000"));
    let (stdout, _, ok) = run(&["rf", a.to_str().unwrap(), a.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("robinson-foulds: 0"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rf_rejects_mismatched_leaves() {
    let dir = std::env::temp_dir().join(format!("mutree-rf2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.nwk");
    let b = dir.join("b.nwk");
    std::fs::write(&a, "(x:1,y:1);").unwrap();
    std::fs::write(&b, "(x:1,q:1);").unwrap();
    let (_, stderr, ok) = run(&["rf", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("same leaf names"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_subcommand_fails() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
}

/// Like [`run_with_stdin`] but returns the raw exit code and stderr too.
fn run_full(args: &[&str], input: &str) -> (String, String, Option<i32>) {
    let mut child = mutree()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mutree");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn bad_matrix_reports_parse_error() {
    let (_, stderr, code) = run_full(&["solve", "-"], "not a matrix");
    assert_eq!(code, Some(3), "input errors exit 3");
    assert!(stderr.contains("parsing"));
    // Data errors get a one-line diagnostic, not the whole usage screed.
    assert!(!stderr.contains("USAGE"));
}

#[test]
fn usage_errors_exit_2_with_usage_text() {
    let (_, stderr, code) = run_full(&["solve", "-", "--backend", "bogus"], MATRIX);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown backend"));
    assert!(stderr.contains("USAGE"));

    let out = mutree().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "missing subcommand exits 2");
}

#[test]
fn timeout_zero_still_prints_a_feasible_tree_and_exits_5() {
    let (stdout, stderr, code) = run_full(&["solve", "-", "--timeout", "0"], MATRIX);
    assert_eq!(code, Some(5), "interrupted-but-usable exits 5\n{stderr}");
    assert!(stdout.contains("weight:"), "{stdout}");
    assert!(stdout.contains(";"), "a tree must still be printed");
    assert!(stderr.contains("deadline expired"), "{stderr}");
}

#[test]
fn fast_with_zero_timeout_degrades_and_exits_5() {
    let (stdout, stderr, code) = run_full(&["fast", "-", "--timeout", "0"], MATRIX);
    assert_eq!(code, Some(5), "{stderr}");
    assert!(stdout.contains("weight:"), "{stdout}");
    assert!(stdout.contains(";"));
    assert!(stderr.contains("degraded"), "{stderr}");
}

#[test]
fn bad_timeout_is_a_usage_error() {
    let (_, stderr, code) = run_full(&["solve", "-", "--timeout", "never"], MATRIX);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("bad timeout"));
}

#[test]
fn trailing_timeout_without_value_is_a_usage_error() {
    let (_, stderr, code) = run_full(&["solve", "-", "--timeout"], MATRIX);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("requires a value"), "{stderr}");
}

#[test]
fn generous_timeout_still_completes_with_exit_0() {
    let (stdout, _, code) = run_full(&["solve", "-", "--timeout", "60"], MATRIX);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("weight: 11"));
}

#[test]
fn solve_with_threads_uses_shared_pool_and_agrees() {
    let (stdout, stderr, code) = run_full(&["solve", "-", "--threads", "2"], MATRIX);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("weight: 11"), "{stdout}");
}

#[test]
fn fast_with_threads_reports_slowest_stages() {
    let (stdout, stderr, code) = run_full(&["fast", "-", "--threads", "2"], MATRIX);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("weight:"), "{stdout}");
    assert!(stderr.contains("slowest stages:"), "{stderr}");
}

#[test]
fn fast_degradation_diagnostics_include_stage_paths() {
    let (_, stderr, code) = run_full(&["fast", "-", "--timeout", "0"], MATRIX);
    assert_eq!(code, Some(5), "{stderr}");
    assert!(stderr.contains("degraded stage"), "{stderr}");
}

#[test]
fn trace_search_logs_structured_events() {
    let (stdout, stderr, code) = run_full(&["solve", "-", "--trace-search", "all"], MATRIX);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("weight: 11"));
    assert!(stderr.contains("trace: event="), "{stderr}");
}

#[test]
fn bad_trace_level_is_a_usage_error() {
    let (_, stderr, code) = run_full(&["solve", "-", "--trace-search", "verbose"], MATRIX);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown trace level"), "{stderr}");
}

#[test]
fn zero_threads_is_a_usage_error() {
    let (_, stderr, code) = run_full(&["fast", "-", "--threads", "0"], MATRIX);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("at least one thread"), "{stderr}");
}

/// A deterministic 10-taxon matrix noisy enough that the exact search
/// keeps a nontrivial open frontier (the 4-taxon MATRIX above can be
/// solved without ever holding two open nodes).
fn gen_matrix() -> String {
    let (stdout, _, ok) = run(&["gen", "random", "10", "--seed", "3"]);
    assert!(ok, "gen must succeed");
    stdout
}

#[test]
fn memory_budget_sheds_nodes_and_exits_5() {
    let m = gen_matrix();
    let (stdout, stderr, code) = run_full(&["solve", "-", "--max-open-nodes", "1"], &m);
    assert_eq!(code, Some(5), "shedding is an incomplete search\n{stderr}");
    assert!(stdout.contains("weight:"), "{stdout}");
    assert!(
        stdout.contains(";"),
        "a feasible tree must still be printed"
    );
    assert!(stderr.contains("memory budget exhausted"), "{stderr}");
    let shed: u64 = stdout
        .lines()
        .find(|l| l.starts_with("retries:"))
        .and_then(|l| l.split("nodes shed:").nth(1))
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("stats line carries nodes shed");
    assert!(shed > 0, "watchdog must report shed nodes:\n{stdout}");
}

#[test]
fn zero_max_open_nodes_is_a_usage_error() {
    let (_, stderr, code) = run_full(&["solve", "-", "--max-open-nodes", "0"], MATRIX);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--max-open-nodes"), "{stderr}");
}

#[test]
fn checkpoint_and_resume_round_trip_preserves_the_weight() {
    let dir = std::env::temp_dir().join(format!("mutree-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("solve.ckpt");
    let ckpt = ckpt.to_str().unwrap();
    let m = gen_matrix();

    let (first, stderr, code) = run_full(&["solve", "-", "--checkpoint", ckpt], &m);
    assert_eq!(code, Some(0), "{stderr}");
    let weight_line = |out: &str| {
        out.lines()
            .find(|l| l.starts_with("weight:"))
            .map(str::to_owned)
            .expect("weight line")
    };
    let ckpts: u64 = first
        .lines()
        .find(|l| l.starts_with("retries:"))
        .and_then(|l| l.split("checkpoints:").nth(1))
        .and_then(|s| s.trim().parse().ok())
        .expect("stats line carries checkpoints");
    assert!(
        ckpts >= 1,
        "at least the final snapshot is written:\n{first}"
    );

    let (resumed, stderr, code) = run_full(&["solve", "-", "--resume", ckpt], &m);
    assert_eq!(code, Some(0), "{stderr}");
    assert_eq!(
        weight_line(&first),
        weight_line(&resumed),
        "resume must reach the identical optimum"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_resume_file_is_an_input_error() {
    let dir = std::env::temp_dir().join(format!("mutree-ckpt-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("garbage.ckpt");
    std::fs::write(&ckpt, b"not a checkpoint at all").unwrap();
    let (_, stderr, code) = run_full(&["solve", "-", "--resume", ckpt.to_str().unwrap()], MATRIX);
    assert_eq!(
        code,
        Some(3),
        "corrupt snapshots are input errors\n{stderr}"
    );
    assert!(stderr.contains("checkpoint"), "{stderr}");
    assert!(!stderr.contains("USAGE"), "data errors stay one-line");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_interval_without_checkpoint_is_a_usage_error() {
    let (_, stderr, code) = run_full(&["solve", "-", "--checkpoint-interval", "64"], MATRIX);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--checkpoint"), "{stderr}");
}

#[test]
fn retry_exhausted_stage_degrades_and_exits_5() {
    // threshold 2 leaves a 2-taxon condensed meta solve; injecting a panic
    // there with one retry exhausts the policy and degrades the stage.
    let (stdout, stderr, code) = run_full(
        &[
            "fast",
            "-",
            "--threshold",
            "2",
            "--inject-panic-taxa",
            "2",
            "--retries",
            "1",
        ],
        MATRIX,
    );
    assert_eq!(code, Some(5), "retry-exhausted is incomplete\n{stderr}");
    assert!(
        stdout.contains(";"),
        "a feasible tree must still be printed"
    );
    assert!(stderr.contains("solver panicked"), "{stderr}");
    assert!(
        stdout.contains("retries: 1"),
        "the spent retry must be reported:\n{stdout}"
    );
}

#[test]
fn retried_fast_run_stays_exit_0_when_the_fault_is_absent() {
    let (stdout, stderr, code) = run_full(&["fast", "-", "--retries", "2"], MATRIX);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("retries: 0"), "{stdout}");
}

/// Parses the `cache: hits H  misses M  warm-seeds W` stats line.
fn cache_counts(stdout: &str) -> (u64, u64, u64) {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("cache:"))
        .unwrap_or_else(|| panic!("no cache line in:\n{stdout}"));
    let nums: Vec<u64> = line
        .split_whitespace()
        .filter_map(|t| t.parse().ok())
        .collect();
    assert_eq!(nums.len(), 3, "malformed cache line: {line}");
    (nums[0], nums[1], nums[2])
}

/// Like [`run_with_stdin`] with the ambient cache switch scrubbed, so
/// the assertion on "no cache" holds even under the CI leg that exports
/// MUTREE_CACHE=1 for the whole suite.
fn run_without_ambient_cache(args: &[&str], input: &str) -> (String, bool) {
    let mut child = mutree()
        .args(args)
        .env_remove("MUTREE_CACHE")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mutree");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn solve_cache_flag_reports_the_lookup() {
    // A fresh process starts with an empty cache: the solve files its
    // result as one miss, and the answer is still the proven optimum.
    let (stdout, ok) = run_with_stdin(&["solve", "-", "--cache"], MATRIX);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("weight: 11"), "{stdout}");
    assert_eq!(cache_counts(&stdout), (0, 1, 0), "{stdout}");
}

#[test]
fn solve_without_cache_reports_zero_lookups() {
    let (stdout, ok) = run_without_ambient_cache(&["solve", "-"], MATRIX);
    assert!(ok, "{stdout}");
    assert_eq!(cache_counts(&stdout), (0, 0, 0), "{stdout}");
}

#[test]
fn fast_cache_flag_reports_group_lookups() {
    let (stdout, ok) = run_with_stdin(&["fast", "-", "--threshold", "2", "--cache"], MATRIX);
    assert!(ok, "{stdout}");
    let (hits, misses, _) = cache_counts(&stdout);
    assert!(
        hits + misses > 0,
        "cacheable group solves must be counted:\n{stdout}"
    );
}

#[test]
fn fast_without_cache_reports_zero_lookups() {
    let (stdout, ok) = run_without_ambient_cache(&["fast", "-", "--threshold", "2"], MATRIX);
    assert!(ok, "{stdout}");
    assert_eq!(cache_counts(&stdout), (0, 0, 0), "{stdout}");
}
