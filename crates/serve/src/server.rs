//! The daemon: listener, admission control, dispatch workers, drain.
//!
//! ```text
//! client ──frame──▶ connection thread ──admit──▶ pending queue (EDF, bounded)
//!                                                      │
//!                              dispatch workers ◀──────┘
//!                                │  solve_plan_hooked(plan, {deadline, cancel,
//!                                │                           shared executor})
//!                                ▼
//!                        response frame (report | error)
//! ```
//!
//! **Admission control.** The pending queue is bounded
//! ([`ServeConfig::queue_depth`]); a request arriving at a full queue is
//! shed immediately with an `overloaded` error frame rather than queued
//! into a latency cliff. Dispatch is earliest-deadline-first: each
//! request's relative `timeout` becomes an absolute deadline *at
//! admission* (queue wait counts against the request's budget, exactly
//! as a client experiences it), deadline-less requests sort last, and
//! ties dispatch FIFO. A request whose deadline has already passed when
//! a worker picks it up is shed as `overloaded` too — starting it could
//! only waste pool time the live requests need. A request whose deadline
//! expires *mid-solve* is not an error: the anytime search returns its
//! best incumbent and the report says `stop deadline`.
//!
//! **Cancellation.** Every admitted request gets a
//! [`CancelToken`] owned by its connection;
//! when the connection's read loop sees EOF or an I/O error, it cancels
//! every token it handed out. A queued request is then dropped at
//! dispatch; an in-flight solve observes the token at its next bound
//! check and stops.
//!
//! **Shared state.** All connections solve through one process-wide
//! [`Executor`] and — because requests default to `cache on` under the
//! daemon ([`ServeConfig::cache_default`]) — one process-wide
//! [`GroupCache`](mutree_core::GroupCache) (the same instance
//! `solve_plan` uses in-process, so a daemon answer is bit-identical to
//! a local one). Replayed matrices are answered from memory with
//! `StageProvenance::Cached`.
//!
//! **Drain.** A `mutree-shutdown v1` frame stops admission (and the
//! acceptor), lets every queued and in-flight request finish, then
//! answers with a `mutree-drain v1` summary carrying the daemon's
//! lifetime counters. [`Server::join`] returns once the workers exit.
//! SIGTERM cannot be hooked from std without `unsafe`, so process
//! supervisors should send the shutdown frame (`mutree serve --drain`)
//! and SIGTERM only as the escalation.

use std::collections::BinaryHeap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mutree_core::{
    solve_plan_hooked, CancelToken, EnvOverrides, Executor, MatrixSource, QueueStats, SolveHooks,
    SolvePlan, SolveRequest, StopReason,
};
use mutree_engine::plan::{env_serve_queue_depth, env_serve_workers};
use mutree_engine::wire::{REQUEST_HEADER, SHUTDOWN_HEADER};
use mutree_engine::{ServeError, ServeErrorCode};

use crate::frame::{self, FrameError};

/// First line of the drain acknowledgement payload.
pub const DRAIN_HEADER: &str = "mutree-drain v1";

/// How often the acceptor polls its non-blocking listener for new
/// connections and the drain flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Slice width for the cancellable stall test hook.
const STALL_POLL: Duration = Duration::from_millis(5);

/// Daemon configuration. Knob precedence is the spine's usual
/// **caller > environment > default** — [`ServeConfig::resolve`] folds
/// the `MUTREE_SERVE_*` variables (read in `mutree_engine::plan`, the
/// workspace's single environment reader) under explicit values.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most requests that may wait in the pending queue; one more is
    /// shed. Default 64.
    pub queue_depth: usize,
    /// Dispatch workers: the number of requests solved concurrently.
    /// Default 2.
    pub workers: usize,
    /// Threads in the shared [`Executor`] that parallel-backend and
    /// decomposed solves borrow. Default: same as `workers`.
    pub threads: usize,
    /// Whether requests that do not say `cache on|off` themselves run
    /// with the shared cache (the daemon's reason to exist is serving
    /// repeated matrices from memory, so the default is `true`; a
    /// request's explicit choice always wins).
    pub cache_default: bool,
    /// Test hook: sleep this long (in cancellable slices) before each
    /// solve, so protocol tests can deterministically hit the
    /// mid-solve window for disconnects and drains.
    #[doc(hidden)]
    pub stall: Option<Duration>,
    /// Test hook: inject the solver's `panic_on_taxa` fault (via
    /// `SolveHooks`) into every solve, so chaos tests can prove a
    /// panicking request fails alone.
    #[doc(hidden)]
    pub fault_taxa: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 64,
            workers: 2,
            threads: 2,
            cache_default: true,
            stall: None,
            fault_taxa: None,
        }
    }
}

impl ServeConfig {
    /// Resolves a config from optional explicit values (CLI flags) over
    /// the `MUTREE_SERVE_QUEUE_DEPTH` / `MUTREE_SERVE_WORKERS`
    /// environment knobs over the defaults. `threads` follows the
    /// resolved worker count unless explicitly set later.
    pub fn resolve(queue_depth: Option<usize>, workers: Option<usize>) -> ServeConfig {
        let defaults = ServeConfig::default();
        let workers = workers
            .or_else(env_serve_workers)
            .unwrap_or(defaults.workers)
            .max(1);
        ServeConfig {
            queue_depth: queue_depth
                .or_else(env_serve_queue_depth)
                .unwrap_or(defaults.queue_depth)
                .max(1),
            workers,
            threads: workers,
            ..defaults
        }
    }
}

/// Lifetime counters of a daemon, reported in the drain acknowledgement.
/// Every admitted or refused request lands in exactly one counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered with a report frame (including anytime reports
    /// whose deadline expired mid-solve).
    pub served: u64,
    /// Requests shed by admission control: queue full, or deadline
    /// already unmeetable at dispatch.
    pub shed: u64,
    /// Requests cancelled by client disconnect (queued or mid-solve).
    pub cancelled: u64,
    /// Requests whose solve panicked (the daemon survived).
    pub panicked: u64,
    /// Requests answered with a `malformed`, `draining` or `solver`
    /// error frame.
    pub errors: u64,
}

impl ServeSummary {
    /// Serializes to the `mutree-drain v1` line form.
    pub fn encode(&self) -> String {
        format!(
            "{DRAIN_HEADER}\nserved {}\nshed {}\ncancelled {}\npanicked {}\nerrors {}\n",
            self.served, self.shed, self.cancelled, self.panicked, self.errors
        )
    }

    /// Parses the text form produced by [`encode`](ServeSummary::encode).
    /// `None` on a wrong header or malformed counter line.
    pub fn decode(text: &str) -> Option<ServeSummary> {
        let mut lines = text.lines();
        if lines.next() != Some(DRAIN_HEADER) {
            return None;
        }
        let mut summary = ServeSummary::default();
        for raw in lines {
            let raw = raw.trim_end();
            if raw.is_empty() {
                continue;
            }
            let (keyword, rest) = raw.split_once(' ')?;
            let value: u64 = rest.trim().parse().ok()?;
            match keyword {
                "served" => summary.served = value,
                "shed" => summary.shed = value,
                "cancelled" => summary.cancelled = value,
                "panicked" => summary.panicked = value,
                "errors" => summary.errors = value,
                _ => return None,
            }
        }
        Some(summary)
    }
}

struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    panicked: AtomicU64,
    errors: AtomicU64,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> ServeSummary {
        ServeSummary {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// The write half of a connection. Responses from dispatch workers and
/// admission errors from the read loop interleave through one mutex, so
/// frames never tear.
struct Conn {
    writer: Mutex<TcpStream>,
}

impl Conn {
    /// Best-effort response: a client that already disconnected makes
    /// the write fail, which is not the daemon's problem.
    fn send(&self, tag: u32, payload: &str) -> bool {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        frame::write_frame(&mut *w, tag, payload.as_bytes()).is_ok()
    }

    fn send_error(&self, tag: u32, code: ServeErrorCode, message: impl Into<String>) -> bool {
        self.send(tag, &ServeError::new(code, message).encode())
    }
}

struct Job {
    plan: SolvePlan,
    /// Absolute deadline fixed at admission (queue wait counts).
    deadline: Option<Instant>,
    /// Admission order, the EDF tie-break.
    seq: u64,
    cancel: CancelToken,
    conn: Arc<Conn>,
    tag: u32,
}

/// EDF ordering for the max-heap: earliest deadline is "greatest",
/// deadline-less jobs sort last, FIFO within ties.
struct QueueEntry(Job);

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq == other.0.seq
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let by_deadline = match (self.0.deadline, other.0.deadline) {
            (Some(a), Some(b)) => b.cmp(&a),
            (Some(_), None) => std::cmp::Ordering::Greater,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (None, None) => std::cmp::Ordering::Equal,
        };
        by_deadline.then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

struct Sched {
    pending: BinaryHeap<QueueEntry>,
    in_flight: usize,
    next_seq: u64,
}

struct Shared {
    state: Mutex<Sched>,
    /// Wakes dispatch workers: new pending work, or drain.
    work_cv: Condvar,
    /// Wakes drain waiters: pending and in-flight both hit zero.
    idle_cv: Condvar,
    draining: AtomicBool,
    exec: Executor,
    env: EnvOverrides,
    config: ServeConfig,
    counters: Counters,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A running daemon. Binding spawns the acceptor and the dispatch
/// workers; [`join`](Server::join) blocks until a shutdown frame drains
/// the daemon.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving. The environment ([`EnvOverrides::capture`]) is captured
    /// once, here: every request this daemon runs resolves against the
    /// daemon's environment, exactly like `solve_request` in-process.
    ///
    /// # Errors
    ///
    /// Any I/O error binding the listener.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(Sched {
                pending: BinaryHeap::new(),
                in_flight: 0,
                next_seq: 0,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            exec: Executor::new(config.threads.max(1)),
            env: EnvOverrides::capture(),
            config,
            counters: Counters::new(),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mutree-serve-accept".to_string())
                .spawn(move || acceptor_loop(&shared, &listener))
                .expect("spawn acceptor")
        };
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mutree-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn dispatch worker")
            })
            .collect();
        Ok(Server {
            shared,
            addr,
            acceptor,
            workers,
        })
    }

    /// The bound address (with the actual port when binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counter snapshot (the drain ack carries the final one).
    pub fn summary(&self) -> ServeSummary {
        self.shared.counters.snapshot()
    }

    /// Queue counters of the shared executor all solves ran on.
    pub fn executor_stats(&self) -> QueueStats {
        self.shared.exec.queue_stats()
    }

    /// Waits for a drain (triggered by a client's shutdown frame) and
    /// returns the final counters.
    pub fn join(self) -> ServeSummary {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        self.shared.counters.snapshot()
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("mutree-serve-conn".to_string())
                    .spawn(move || connection_loop(&shared, stream));
                // Out of threads: refuse this connection, keep serving.
                drop(spawned);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (aborted handshakes) are not fatal.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Conn {
        writer: Mutex::new(write_half),
    });
    let mut reader = stream;
    // Tokens of every request this connection admitted; cancelled in
    // bulk when the client goes away (sticky tokens make cancelling
    // already-answered requests harmless).
    let mut tokens: Vec<CancelToken> = Vec::new();
    loop {
        match frame::read_frame(&mut reader) {
            Ok(None) | Err(FrameError::Io(_)) => break,
            Err(FrameError::Truncated(tag)) => {
                // The read half died mid-frame but the write half may
                // still be up (a half-close): name the problem, then
                // treat the connection as gone.
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                conn.send_error(
                    tag.unwrap_or(0),
                    ServeErrorCode::Malformed,
                    "truncated frame",
                );
                break;
            }
            Err(e @ FrameError::Oversized { tag, .. }) => {
                // The oversized payload was never read, so the stream
                // position is inside it: no resync is possible, answer
                // and close.
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                conn.send_error(tag, ServeErrorCode::Malformed, e.to_string());
                break;
            }
            Ok(Some((tag, payload))) => {
                let Ok(text) = String::from_utf8(payload) else {
                    // Framing is intact, so the conversation can go on.
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    conn.send_error(tag, ServeErrorCode::Malformed, "payload is not UTF-8");
                    continue;
                };
                let header = text.lines().next().unwrap_or("").trim_end();
                if header == SHUTDOWN_HEADER {
                    drain(shared);
                    conn.send(tag, &shared.counters.snapshot().encode());
                    break;
                } else if header == REQUEST_HEADER {
                    admit(shared, &conn, tag, &text, &mut tokens);
                } else {
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    conn.send_error(
                        tag,
                        ServeErrorCode::Malformed,
                        format!("unknown payload header {header:?}"),
                    );
                }
            }
        }
    }
    for token in tokens {
        token.cancel();
    }
}

fn admit(
    shared: &Arc<Shared>,
    conn: &Arc<Conn>,
    tag: u32,
    text: &str,
    tokens: &mut Vec<CancelToken>,
) {
    if shared.draining.load(Ordering::Acquire) {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        conn.send_error(tag, ServeErrorCode::Draining, "daemon is draining");
        return;
    }
    let mut req = match SolveRequest::decode(text) {
        Ok(req) => req,
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            conn.send_error(tag, ServeErrorCode::Malformed, e.to_string());
            return;
        }
    };
    // Validation-strict: the daemon solves what the client sent, it does
    // not read server-local files on a client's say-so.
    if matches!(req.source, MatrixSource::PhylipPath(_)) {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        conn.send_error(
            tag,
            ServeErrorCode::Malformed,
            "the daemon accepts inline matrices only (matrix inline …), not server-side paths",
        );
        return;
    }
    if req.cache.is_none() && shared.config.cache_default {
        req = req.cache(true);
    }
    let deadline = req.timeout.map(|t| Instant::now() + t);
    let plan = SolvePlan::resolve(req, &shared.env);
    let token = CancelToken::new();
    {
        let mut st = shared.lock();
        if st.pending.len() >= shared.config.queue_depth {
            drop(st);
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            conn.send_error(
                tag,
                ServeErrorCode::Overloaded,
                format!("pending queue full (depth {})", shared.config.queue_depth),
            );
            return;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pending.push(QueueEntry(Job {
            plan,
            deadline,
            seq,
            cancel: token.clone(),
            conn: Arc::clone(conn),
            tag,
        }));
        shared.work_cv.notify_one();
    }
    tokens.push(token);
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if let Some(entry) = st.pending.pop() {
                    st.in_flight += 1;
                    break Some(entry.0);
                }
                if shared.draining.load(Ordering::Acquire) {
                    break None;
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        run_job(shared, &job);
        let st = shared.lock();
        let idle = {
            let mut st = st;
            st.in_flight -= 1;
            st.in_flight == 0 && st.pending.is_empty()
        };
        if idle {
            shared.idle_cv.notify_all();
        }
    }
}

fn run_job(shared: &Arc<Shared>, job: &Job) {
    let c = &shared.counters;
    if job.cancel.is_cancelled() {
        // The client disconnected while the job was still queued.
        c.cancelled.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if let Some(d) = job.deadline {
        if Instant::now() >= d {
            c.shed.fetch_add(1, Ordering::Relaxed);
            job.conn.send_error(
                job.tag,
                ServeErrorCode::Overloaded,
                "deadline already unmeetable at dispatch",
            );
            return;
        }
    }
    if let Some(stall) = shared.config.stall {
        let end = Instant::now() + stall;
        while Instant::now() < end {
            if job.cancel.is_cancelled() {
                c.cancelled.fetch_add(1, Ordering::Relaxed);
                job.conn
                    .send_error(job.tag, ServeErrorCode::Cancelled, "client disconnected");
                return;
            }
            std::thread::sleep(STALL_POLL);
        }
    }
    let hooks = SolveHooks {
        deadline: job.deadline,
        cancel: Some(job.cancel.clone()),
        executor: Some(shared.exec.clone()),
        panic_on_taxa: shared.config.fault_taxa,
    };
    match catch_unwind(AssertUnwindSafe(|| solve_plan_hooked(&job.plan, &hooks))) {
        Err(_) => {
            // The request died; the daemon, its pool and every other
            // request did not.
            c.panicked.fetch_add(1, Ordering::Relaxed);
            job.conn.send_error(
                job.tag,
                ServeErrorCode::Panicked,
                "the solve panicked; this request failed, the daemon is unharmed",
            );
        }
        Ok(Err(e)) => {
            c.errors.fetch_add(1, Ordering::Relaxed);
            job.conn
                .send_error(job.tag, ServeErrorCode::Solver, e.to_string());
        }
        Ok(Ok(report)) => {
            if report.stop == StopReason::Cancelled && job.cancel.is_cancelled() {
                c.cancelled.fetch_add(1, Ordering::Relaxed);
                job.conn
                    .send_error(job.tag, ServeErrorCode::Cancelled, "client disconnected");
            } else {
                c.served.fetch_add(1, Ordering::Relaxed);
                job.conn.send(job.tag, &report.encode());
            }
        }
    }
}

/// Stops admission, waits for queued + in-flight work to finish.
fn drain(shared: &Arc<Shared>) {
    shared.draining.store(true, Ordering::Release);
    shared.work_cv.notify_all();
    let mut st = shared.lock();
    while st.in_flight > 0 || !st.pending.is_empty() {
        st = shared.idle_cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_round_trips() {
        let s = ServeSummary {
            served: 400,
            shed: 13,
            cancelled: 2,
            panicked: 1,
            errors: 5,
        };
        assert_eq!(ServeSummary::decode(&s.encode()), Some(s));
        assert_eq!(ServeSummary::decode("mutree-drain v2\n"), None);
        assert_eq!(ServeSummary::decode("mutree-drain v1\nserved x\n"), None);
    }

    #[test]
    fn edf_orders_by_deadline_then_fifo() {
        let now = Instant::now();
        let job = |seq: u64, deadline: Option<Duration>| {
            let mut m = mutree_distmat::DistanceMatrix::zeros(3).unwrap();
            m.set(1, 0, 2.0);
            m.set(2, 0, 4.0);
            m.set(2, 1, 4.0);
            QueueEntry(Job {
                plan: SolvePlan::resolve(SolveRequest::exact(m), &EnvOverrides::none()),
                deadline: deadline.map(|d| now + d),
                seq,
                cancel: CancelToken::new(),
                conn: Arc::new(Conn {
                    writer: Mutex::new(loopback_pair().0),
                }),
                tag: seq as u32,
            })
        };
        let mut heap = BinaryHeap::new();
        heap.push(job(0, None));
        heap.push(job(1, Some(Duration::from_secs(30))));
        heap.push(job(2, Some(Duration::from_secs(5))));
        heap.push(job(3, Some(Duration::from_secs(5))));
        heap.push(job(4, None));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.0.seq)).collect();
        // Earliest deadline first (5 s before 30 s), FIFO within the tie
        // (2 before 3), deadline-less last in FIFO order (0 before 4).
        assert_eq!(order, vec![2, 3, 1, 0, 4]);
    }

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }
}
