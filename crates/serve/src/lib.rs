//! Solve-as-a-service: the `mutree` daemon and its replay client.
//!
//! This crate puts the engine spine behind a TCP socket. The wire
//! format reuses the spine's existing text codecs — a request frame
//! carries a `mutree-request v1` document, a response frame carries a
//! `mutree-report v1` or `mutree-error v1` document — wrapped in
//! minimal length-prefixed binary frames ([`frame`]). Because both
//! codecs are bit-exact (f64s travel as `{:016x}` bit patterns, trees
//! as the checkpoint codec's bytes), a report that crossed the socket
//! is **bit-identical** to the [`SolveReport`](mutree_core::SolveReport)
//! the daemon computed, which is in turn bit-identical to an in-process
//! `solve_plan` of the same request: the daemon adds availability, not
//! a second answer-defining code path.
//!
//! The three layers:
//!
//! * [`frame`] — length-prefixed frames with a correlation tag and a
//!   hard size limit checked before allocation.
//! * [`server`] — the daemon: bounded pending queue,
//!   earliest-deadline-first dispatch, load shedding, per-request
//!   cancellation wired to client disconnect, one shared
//!   [`Executor`](mutree_core::Executor) and process-wide group-solve
//!   cache, graceful drain with a final counter summary.
//! * [`client`] — a blocking request/response client used by the CLI's
//!   `--send`/`--drain` modes, the protocol tests, and the `exp_serve`
//!   replay bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;

pub use client::{Client, ClientError};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use server::{ServeConfig, ServeSummary, Server, DRAIN_HEADER};
