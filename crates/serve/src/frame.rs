//! Length-prefixed frames over a byte stream.
//!
//! The daemon's transport is deliberately minimal: every message is one
//! frame, `[payload length: u32 BE][tag: u32 BE][payload bytes]`, where
//! the payload is one of the engine spine's line-based text documents
//! (`mutree-request v1` in, `mutree-report v1` / `mutree-error v1` out,
//! plus the shutdown/drain control pair). The tag is an opaque client
//! correlation id: the server echoes a request's tag on its response, so
//! a client that pipelines can match responses to requests without the
//! protocol dictating ordering.
//!
//! The length prefix is validated **before** any payload allocation:
//! a frame longer than [`MAX_FRAME_LEN`] is refused without reading it,
//! so a hostile or buggy client cannot make the daemon allocate
//! gigabytes by lying in the header. 16 MiB comfortably fits the largest
//! inline request the solver accepts (a 256-taxon matrix serializes to
//! well under 1 MiB) with room for future growth.

use std::io::{self, Read, Write};

/// Upper bound on a frame's payload length, in bytes.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (connection reset, ...).
    Io(io::Error),
    /// The stream ended mid-frame: inside the 8-byte header or before
    /// the promised payload length arrived. Carries the tag when the
    /// header was complete enough to know it.
    Truncated(Option<u32>),
    /// The header promised a payload longer than [`MAX_FRAME_LEN`];
    /// nothing was allocated or read past the header.
    Oversized {
        /// The frame's correlation tag.
        tag: u32,
        /// The promised payload length.
        len: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Truncated(_) => f.write_str("truncated frame"),
            FrameError::Oversized { len, .. } => {
                write!(f, "oversized frame: {len} bytes (limit {MAX_FRAME_LEN})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame and flushes the stream.
///
/// # Errors
///
/// Any I/O error from the underlying writer.
pub fn write_frame(w: &mut impl Write, tag: u32, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(&tag.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end of stream (the peer closed
/// between frames); an end of stream *inside* a frame is
/// [`FrameError::Truncated`].
///
/// # Errors
///
/// [`FrameError`] on I/O failure, truncation, or an oversized length
/// prefix.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u32, Vec<u8>)>, FrameError> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated(None))
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let tag = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { tag, len });
    }
    let mut payload = vec![0u8; len];
    let mut at = 0;
    while at < len {
        match r.read(&mut payload[at..]) {
            Ok(0) => return Err(FrameError::Truncated(Some(tag))),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some((tag, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello").unwrap();
        write_frame(&mut buf, 8, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some((7, b"hello".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((8, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_header_and_payload_are_distinguished_from_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"abcdef").unwrap();
        // Half a header.
        let mut r = &buf[..3];
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Truncated(None))
        ));
        // Full header, half a payload.
        let mut r = &buf[..10];
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Truncated(Some(1)))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_refused_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(&42u32.to_be_bytes());
        let mut r = buf.as_slice();
        match read_frame(&mut r) {
            Err(FrameError::Oversized { tag, len }) => {
                assert_eq!(tag, 42);
                assert_eq!(len, u32::MAX as usize);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}
