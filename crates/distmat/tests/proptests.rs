//! Property tests of the distance-matrix invariants.

use mutree_distmat::{gen, io, DistanceMatrix, MaxminPermutation, SolverMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_matrix(max_n: usize) -> impl Strategy<Value = DistanceMatrix> {
    (2..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = DistanceMatrix::zeros(n).unwrap();
        for i in 1..n {
            for j in 0..i {
                m.set(i, j, rand::Rng::gen_range(&mut rng, 0.5..100.0));
            }
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn condensed_roundtrip(m in arb_matrix(12)) {
        let again = DistanceMatrix::from_condensed(m.len(), m.condensed().to_vec()).unwrap();
        prop_assert_eq!(&m, &again);
    }

    #[test]
    fn permutation_composes_to_identity(m in arb_matrix(10), seed in any::<u64>()) {
        let n = m.len();
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher–Yates with the seeded rng.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rand::Rng::gen_range(&mut rng, 0..=i);
            perm.swap(i, j);
        }
        let permuted = m.permute(&perm);
        // Inverse permutation restores the original.
        let mut inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        prop_assert_eq!(permuted.permute(&inv), m);
    }

    #[test]
    fn closure_is_idempotent_and_dominated(m in arb_matrix(10)) {
        let c1 = m.metric_closure();
        let c2 = c1.metric_closure();
        prop_assert!(c1.is_metric(1e-9));
        // Idempotent up to floating-point ulps: a second pass may shave a
        // last-bit triangle violation left by summation rounding.
        prop_assert!(c1.max_relative_deviation(&c2) < 1e-12);
        for (i, j, d) in c1.pairs() {
            prop_assert!(d <= m.get(i, j) + 1e-12);
        }
    }

    #[test]
    fn submatrix_preserves_entries(m in arb_matrix(10)) {
        let n = m.len();
        if n < 4 {
            return Ok(());
        }
        let taxa = [0usize, n / 2, n - 1];
        let s = m.submatrix(&taxa).unwrap();
        for (a, &ta) in taxa.iter().enumerate() {
            for (b, &tb) in taxa.iter().enumerate() {
                prop_assert_eq!(s.get(a, b), m.get(ta, tb));
            }
        }
    }

    #[test]
    fn phylip_roundtrip(m in arb_matrix(8)) {
        let mut labeled = m.clone();
        labeled.set_labels((0..m.len()).map(|i| format!("sp{i}")));
        let text = io::to_phylip(&labeled);
        let parsed = io::parse_phylip(&text).unwrap();
        prop_assert_eq!(parsed.len(), labeled.len());
        for (i, j, d) in labeled.pairs() {
            prop_assert!((parsed.get(i, j) - d).abs() < 1e-5);
        }
    }

    #[test]
    fn maxmin_is_maxmin(n in 2usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::uniform_metric(n, 1.0, 50.0, &mut rng);
        let p = MaxminPermutation::compute(&m);
        prop_assert!(p.is_maxmin_for(&m, 1e-9));
    }

    #[test]
    fn ultrametric_generator_beats_its_own_check(n in 2usize..16, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::random_ultrametric(n, 30.0, &mut rng);
        prop_assert!(m.is_ultrametric(1e-9));
        prop_assert!(m.is_metric(1e-9));
    }

    /// A solver matrix built from the maxmin-permuted matrix round-trips
    /// bit-for-bit under the inverse permutation: `sm[i][j]` of the
    /// permuted copy equals `m[order[i]][order[j]]` of the original. Its
    /// padding lanes stay poisoned (NaN in debug builds) / zeroed
    /// (release) and never leak into the payload columns.
    #[test]
    fn solver_matrix_roundtrips_under_inverse_maxmin(m in arb_matrix(70)) {
        let n = m.len();
        let perm = m.maxmin_permutation();
        let pm = perm.apply(&m);
        let sm = SolverMatrix::new(&pm);
        let order = perm.order();
        prop_assert_eq!(sm.len(), n);
        prop_assert_eq!(sm.stride() % 64, 0);
        prop_assert!(sm.stride() >= n);
        for i in 0..n {
            let row = sm.row(i);
            prop_assert_eq!(row.len(), sm.stride());
            for j in 0..n {
                // Three ways to the same bits: blocked row, blocked
                // getter, original matrix through the inverse relabeling.
                prop_assert_eq!(row[j].to_bits(), sm.get(i, j).to_bits());
                prop_assert_eq!(row[j].to_bits(), pm.get(i, j).to_bits());
                prop_assert_eq!(row[j].to_bits(), m.get(order[i], order[j]).to_bits());
            }
            for pad in &row[n..] {
                if cfg!(debug_assertions) {
                    prop_assert!(pad.is_nan(), "padding must stay poisoned");
                } else {
                    prop_assert_eq!(pad.to_bits(), 0.0f64.to_bits());
                }
            }
        }
    }
}
