//! PHYLIP-style square distance-matrix I/O.
//!
//! The format accepted by [`parse_phylip`] is the classic one used by
//! `phylip neighbor` and friends:
//!
//! ```text
//!     4
//! alpha      0.0  1.0  2.0  3.0
//! beta       1.0  0.0  2.0  3.0
//! gamma      2.0  2.0  0.0  3.0
//! delta      3.0  3.0  3.0  0.0
//! ```
//!
//! The first non-empty line holds the number of taxa; each subsequent line
//! holds a label followed by a full row of distances. Rows may wrap across
//! lines. [`to_phylip`] produces the same format.

use crate::{DistanceMatrix, MatrixError};

/// Parses a PHYLIP-style square distance matrix.
///
/// # Errors
///
/// Returns [`MatrixError::Parse`] on malformed input and the usual
/// construction errors (asymmetry, negative distances, …) otherwise.
pub fn parse_phylip(input: &str) -> Result<DistanceMatrix, MatrixError> {
    let mut lines = input.lines().enumerate();
    let (header_line_no, header) =
        lines
            .by_ref()
            .find(|(_, l)| !l.trim().is_empty())
            .ok_or(MatrixError::Parse {
                line: 1,
                message: "empty input".into(),
            })?;
    let n: usize = header.trim().parse().map_err(|_| MatrixError::Parse {
        line: header_line_no + 1,
        message: format!("expected taxon count, found {:?}", header.trim()),
    })?;
    if n < 2 {
        return Err(MatrixError::TooSmall { n });
    }

    // Collect remaining whitespace-separated tokens with their line numbers;
    // rows are "label + n numbers" but may wrap across physical lines.
    let mut tokens: Vec<(usize, &str)> = Vec::new();
    for (line_no, line) in lines {
        for tok in line.split_whitespace() {
            tokens.push((line_no + 1, tok));
        }
    }

    let mut labels = Vec::with_capacity(n);
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut it = tokens.into_iter();
    for row in 0..n {
        let (line, label) = it.next().ok_or(MatrixError::Parse {
            line: 0,
            message: format!("missing label for row {row}"),
        })?;
        if label.parse::<f64>().is_ok() {
            return Err(MatrixError::Parse {
                line,
                message: format!("expected a label for row {row}, found number {label:?}"),
            });
        }
        labels.push(label.to_string());
        let mut values = Vec::with_capacity(n);
        for col in 0..n {
            let (line, tok) = it.next().ok_or(MatrixError::Parse {
                line: 0,
                message: format!("row {row} ended after {col} of {n} distances"),
            })?;
            let v: f64 = tok.parse().map_err(|_| MatrixError::Parse {
                line,
                message: format!("bad distance {tok:?} in row {row}"),
            })?;
            values.push(v);
        }
        rows.push(values);
    }
    if let Some((line, tok)) = it.next() {
        return Err(MatrixError::Parse {
            line,
            message: format!("unexpected trailing token {tok:?}"),
        });
    }

    let mut m = DistanceMatrix::from_rows(&rows)?;
    m.set_labels(labels);
    Ok(m)
}

/// Formats a matrix in PHYLIP square format with 6-decimal distances.
pub fn to_phylip(m: &DistanceMatrix) -> String {
    let n = m.len();
    let mut out = format!("{n}\n");
    let width = (0..n).map(|i| m.label(i).len()).max().unwrap_or(0).max(10);
    for i in 0..n {
        out.push_str(&format!("{:<width$}", m.label(i), width = width));
        for j in 0..n {
            out.push_str(&format!(" {:>12.6}", m.get(i, j)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
4
alpha  0 1 4 4
beta   1 0 4 4
gamma  4 4 0 2
delta  4 4 2 0
";

    #[test]
    fn parses_simple_matrix() {
        let m = parse_phylip(SAMPLE).unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(2, 3), 2.0);
        assert_eq!(m.label(3), "delta");
    }

    #[test]
    fn roundtrips_through_format() {
        let m = parse_phylip(SAMPLE).unwrap();
        let text = to_phylip(&m);
        let again = parse_phylip(&text).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn accepts_wrapped_rows_and_blank_lines() {
        let wrapped = "\n3\n a 0 1\n   2\n b 1 0 3\n c 2 3\n 0\n";
        let m = parse_phylip(wrapped).unwrap();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 2), 3.0);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse_phylip("x\n"),
            Err(MatrixError::Parse { .. })
        ));
        assert!(matches!(
            parse_phylip("1\n a 0\n"),
            Err(MatrixError::TooSmall { n: 1 })
        ));
        assert!(matches!(parse_phylip(""), Err(MatrixError::Parse { .. })));
    }

    #[test]
    fn rejects_truncated_and_trailing() {
        assert!(parse_phylip("3\n a 0 1 2\n b 1 0\n").is_err());
        assert!(parse_phylip(&format!("{SAMPLE} extra")).is_err());
    }

    #[test]
    fn rejects_numeric_label() {
        assert!(matches!(
            parse_phylip("2\n 7 0 1\n b 1 0\n"),
            Err(MatrixError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_asymmetric_input() {
        let bad = "2\n a 0 1\n b 2 0\n";
        assert!(matches!(
            parse_phylip(bad),
            Err(MatrixError::Asymmetric { .. })
        ));
    }
}
