//! Random distance-matrix generators for experiments.
//!
//! Two families match the paper's workloads:
//!
//! * [`uniform_metric`] — "randomly generated species matrix" with values in
//!   a range such as `0..100`, made metric by Floyd–Warshall closure (the
//!   paper assumes the triangle inequality holds for its inputs);
//! * [`perturbed_ultrametric`] — clock-like matrices with bounded relative
//!   noise, structurally similar to distance matrices computed from real
//!   mitochondrial DNA (near-ultrametric with clustered subfamilies).
//!
//! All generators are deterministic given the caller's RNG, so experiments
//! are reproducible from a seed.

use rand::Rng;

use crate::DistanceMatrix;

/// Generates a symmetric matrix with off-diagonal entries uniform in
/// `[lo, hi)`, then applies [`DistanceMatrix::metric_closure`] so the result
/// is a metric.
///
/// # Panics
///
/// Panics when `n < 2` or the range is empty or negative.
pub fn uniform_metric<R: Rng + ?Sized>(n: usize, lo: f64, hi: f64, rng: &mut R) -> DistanceMatrix {
    assert!(n >= 2, "need at least two taxa");
    assert!(0.0 <= lo && lo < hi, "need 0 <= lo < hi");
    let mut m = DistanceMatrix::zeros(n).expect("n >= 2");
    for i in 1..n {
        for j in 0..i {
            // Keep distances strictly positive so taxa stay distinguishable.
            let v = rng.gen_range(lo..hi).max(f64::MIN_POSITIVE);
            m.set(i, j, v);
        }
    }
    m.metric_closure()
}

/// Generates an exactly ultrametric matrix by drawing a random rooted binary
/// tree shape and monotone node heights, then reading off leaf distances
/// `2 · height(LCA)`.
///
/// `max_height` bounds the root height; heights shrink geometrically toward
/// the leaves, giving clustered, clock-like matrices.
///
/// # Panics
///
/// Panics when `n < 2` or `max_height <= 0`.
pub fn random_ultrametric<R: Rng + ?Sized>(
    n: usize,
    max_height: f64,
    rng: &mut R,
) -> DistanceMatrix {
    assert!(n >= 2, "need at least two taxa");
    assert!(max_height > 0.0, "max_height must be positive");

    // Random agglomeration: repeatedly join two random clusters; the join
    // created at step k (out of n-1) gets a height drawn within a window
    // that grows with k, keeping heights monotone along root paths.
    struct Cluster {
        leaves: Vec<usize>,
        height: f64,
    }
    let mut clusters: Vec<Cluster> = (0..n)
        .map(|i| Cluster {
            leaves: vec![i],
            height: 0.0,
        })
        .collect();
    let mut m = DistanceMatrix::zeros(n).expect("n >= 2");
    let mut floor = 0.0f64;
    while clusters.len() > 1 {
        let a = rng.gen_range(0..clusters.len());
        let mut b = rng.gen_range(0..clusters.len() - 1);
        if b >= a {
            b += 1;
        }
        let (a, b) = (a.min(b), a.max(b));
        let cb = clusters.swap_remove(b);
        let ca = &mut clusters[a];
        let low = floor.max(ca.height).max(cb.height);
        // Strictly above every prior join so the matrix is generically
        // ultrametric with distinct internal heights.
        let height = rng
            .gen_range((low + 1e-9)..(low + 1e-9 + max_height / n as f64).max(low * 1.0001 + 1e-9));
        for &i in &ca.leaves {
            for &j in &cb.leaves {
                m.set(i, j, 2.0 * height);
            }
        }
        ca.leaves.extend(cb.leaves);
        ca.height = height;
        floor = height;
    }
    m
}

/// Generates a near-ultrametric matrix: [`random_ultrametric`] distances,
/// each multiplied by an independent factor uniform in
/// `[1 − noise, 1 + noise]`, then metric closure.
///
/// With `noise` around `0.05–0.15` the result behaves like edit-distance
/// matrices from clock-like molecular data: almost ultrametric, strongly
/// clustered, metric.
///
/// # Panics
///
/// Panics when `n < 2`, `max_height <= 0`, or `noise` is outside `[0, 1)`.
pub fn perturbed_ultrametric<R: Rng + ?Sized>(
    n: usize,
    max_height: f64,
    noise: f64,
    rng: &mut R,
) -> DistanceMatrix {
    assert!((0.0..1.0).contains(&noise), "noise must be in [0, 1)");
    let mut m = random_ultrametric(n, max_height, rng);
    if noise > 0.0 {
        for i in 1..n {
            for j in 0..i {
                let f = rng.gen_range((1.0 - noise)..(1.0 + noise));
                m.set(i, j, m.get(i, j) * f);
            }
        }
        m = m.metric_closure();
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_metric_is_metric_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = uniform_metric(12, 0.0, 100.0, &mut rng);
        assert!(m.is_metric(1e-9));
        assert!(m.max_distance() < 100.0);
        assert!(m.min_distance() > 0.0);
    }

    #[test]
    fn uniform_metric_deterministic_per_seed() {
        let a = uniform_metric(8, 0.0, 100.0, &mut StdRng::seed_from_u64(1));
        let b = uniform_metric(8, 0.0, 100.0, &mut StdRng::seed_from_u64(1));
        let c = uniform_metric(8, 0.0, 100.0, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_ultrametric_is_ultrametric() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2, 3, 5, 17] {
            let m = random_ultrametric(n, 50.0, &mut rng);
            assert!(m.is_ultrametric(1e-9), "n = {n}");
            assert!(m.is_metric(1e-9), "n = {n}");
            assert!(m.min_distance() > 0.0, "n = {n}");
        }
    }

    #[test]
    fn perturbed_is_metric_but_usually_not_ultrametric() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = perturbed_ultrametric(15, 50.0, 0.1, &mut rng);
        assert!(m.is_metric(1e-9));
        // With 10% noise on 15 taxa, exact ultrametricity is essentially
        // impossible.
        assert!(!m.is_ultrametric(1e-9));
    }

    #[test]
    fn zero_noise_preserves_ultrametricity() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = perturbed_ultrametric(10, 50.0, 0.0, &mut rng);
        assert!(m.is_ultrametric(1e-9));
    }
}
