//! Solver-local matrix layout: the blocked row-major copy the hot bound
//! kernels read.
//!
//! [`DistanceMatrix`] stores a packed strict lower triangle — ideal for
//! validation, I/O and memory, but hostile to the branch-and-bound hot
//! path: every `get(i, j)` pays an index comparison plus a triangular
//! index multiply, and a row scan walks a stride that grows with `i`.
//! Profiles (`results/BENCH_frontier.json`) put the Wu–Chao–Tang bound
//! arithmetic — row maxima against leaf masks, column-prefix minima,
//! 3-3 close-pair comparisons — at the top of node expansion.
//!
//! A [`SolverMatrix`] is built once per solve, *after* the maxmin
//! relabeling, so its row order is the leaf-sorted order the search
//! consumes. The layout is chosen for the access pattern:
//!
//! * **full square rows** — `row(i)` is one contiguous `&[f64]`, read
//!   front to back by the lane kernels (`mutree_bnb::bound`); symmetry
//!   is traded for locality,
//! * **rows padded to the leaf-word stride** — every row holds
//!   `ceil(n/64)·64` lanes, so 64-bit leaf-mask word `w` always covers
//!   lanes `64w..64(w+1)` of the row: leaf-word iteration and lane loads
//!   share one stride at every monomorphized `LeafWords<K>` width,
//! * **cache-line-aligned blocks** — the buffer is over-allocated and
//!   offset so every row starts on a 64-byte boundary; a row is then a
//!   whole number of 8-lane blocks, each one cache line,
//! * **poisoned padding** — lanes `n..stride` of each row are `NaN` in
//!   debug builds (zero in release). A kernel that ever lets padding
//!   leak into a bound turns the result into `NaN`, which the debug
//!   assertions and the differential tests catch immediately.

use crate::DistanceMatrix;

/// Lanes per block: 8 `f64`s = one 64-byte cache line, and the fixed-lane
/// width of the `mutree_bnb::bound` inner loops.
pub const LANE_BLOCK: usize = 8;

/// Lanes covered by one 64-bit leaf-mask word; rows are padded to a
/// multiple of this so mask words and row blocks share one stride.
pub const WORD_LANES: usize = 64;

/// A blocked, row-major, padded copy of a [`DistanceMatrix`], laid out
/// for the branch-and-bound bound kernels (see the module docs).
///
/// Built once per solve from the already maxmin-relabeled matrix;
/// read-only afterwards. Row `i` is the full symmetric row
/// `M[i, 0..n]` (diagonal zero) followed by padding lanes up to
/// [`stride`](SolverMatrix::stride).
#[derive(Debug, Clone)]
pub struct SolverMatrix {
    n: usize,
    stride: usize,
    /// `off..off + n·stride` is the aligned payload; `0..off` is the
    /// alignment slack of the allocation.
    off: usize,
    buf: Vec<f64>,
}

impl SolverMatrix {
    /// Copies `m` into the blocked layout. `O(n²)` time and space, done
    /// once per solve.
    pub fn new(m: &DistanceMatrix) -> Self {
        let n = m.len();
        let stride = n.div_ceil(WORD_LANES) * WORD_LANES;
        // Padding lanes must never reach a bound: poison them in debug
        // builds so any leak is a NaN, not a silently-absorbed zero.
        let pad = if cfg!(debug_assertions) {
            f64::NAN
        } else {
            0.0
        };
        // Over-allocate by one cache line of lanes and slide the payload
        // forward so every row starts 64-byte aligned (rows stay aligned
        // because `stride` is a multiple of LANE_BLOCK).
        let mut buf = vec![pad; n * stride + LANE_BLOCK];
        let addr = buf.as_ptr() as usize;
        debug_assert_eq!(addr % std::mem::align_of::<f64>(), 0);
        let off = (addr.next_multiple_of(64) - addr) / std::mem::size_of::<f64>();
        for i in 0..n {
            let base = off + i * stride;
            for j in 0..n {
                buf[base + j] = m.get(i, j);
            }
        }
        SolverMatrix {
            n,
            stride,
            off,
            buf,
        }
    }

    /// Number of taxa (valid lanes per row).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: built from a matrix with at least two taxa.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lanes per row including padding: `ceil(n/64)·64`, a whole number
    /// of cache-line blocks and of leaf-mask words.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row `i` including its padding lanes, as one contiguous 64-byte
    /// aligned slice of [`stride`](SolverMatrix::stride) lanes. Lanes
    /// `n..stride` are padding: zero in release builds, `NaN` in debug
    /// builds — kernels must mask them out, never absorb them.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.n, "taxon index out of bounds");
        let base = self.off + i * self.stride;
        &self.buf[base..base + self.stride]
    }

    /// Distance between taxa `i` and `j` — same value, bit for bit, as
    /// the source matrix's `get`.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "taxon index out of bounds");
        self.buf[self.off + i * self.stride + j]
    }

    /// Median of the three pairwise distances of a leaf triple, read
    /// from the blocked rows — same value, bit for bit, as
    /// [`DistanceMatrix::triple_med`], with the same max/min reduction
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[inline]
    pub fn triple_med(&self, i: usize, j: usize, s: usize) -> f64 {
        let (a, b, c) = (self.get(i, j), self.get(i, s), self.get(j, s));
        a.max(b).min(a.max(c)).min(b.max(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 4.0, 2.0, 9.0],
            vec![4.0, 0.0, 4.0, 9.0],
            vec![2.0, 4.0, 0.0, 9.0],
            vec![9.0, 9.0, 9.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn triple_med_matches_between_backends() {
        let m = sample();
        let s = SolverMatrix::new(&m);
        for k in 2..4 {
            for j in 1..k {
                for i in 0..j {
                    let mut d = [m.get(i, j), m.get(i, k), m.get(j, k)];
                    d.sort_by(f64::total_cmp);
                    assert_eq!(m.triple_med(i, j, k).to_bits(), d[1].to_bits());
                    assert_eq!(
                        s.triple_med(i, j, k).to_bits(),
                        m.triple_med(i, j, k).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn round_trips_every_entry() {
        let m = sample();
        let s = SolverMatrix::new(&m);
        assert_eq!(s.len(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(s.get(i, j).to_bits(), m.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn rows_are_padded_to_the_word_stride_and_aligned() {
        let m = sample();
        let s = SolverMatrix::new(&m);
        assert_eq!(s.stride(), WORD_LANES);
        for i in 0..4 {
            let row = s.row(i);
            assert_eq!(row.len(), s.stride());
            assert_eq!(row.as_ptr() as usize % 64, 0, "row {i} misaligned");
            assert_eq!(row[i], 0.0, "diagonal of row {i}");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    fn padding_is_nan_poisoned_in_debug() {
        let m = sample();
        let s = SolverMatrix::new(&m);
        for i in 0..4 {
            for &lane in &s.row(i)[4..] {
                assert!(lane.is_nan());
            }
        }
    }

    #[test]
    fn stride_crosses_word_boundaries() {
        for (n, want) in [(2usize, 64usize), (64, 64), (65, 128), (130, 192)] {
            let m = DistanceMatrix::zeros(n).unwrap();
            let s = SolverMatrix::new(&m);
            assert_eq!(s.stride(), want, "n = {n}");
            assert_eq!(s.row(n - 1).len(), want);
        }
    }
}
