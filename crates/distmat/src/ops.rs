use crate::DistanceMatrix;

/// A maxmin permutation of the taxa of a matrix, as required by the
/// Wu–Chao–Tang branch-and-bound lower bound (their Step 1, "relabel the
/// species such that (1, 2, …, n) is a maxmin permutation").
///
/// A permutation `π` is *maxmin* when `M[π₀, π₁]` is the maximum distance in
/// the matrix and, for every `k ≥ 2`, taxon `π_k` maximizes
/// `min_{i < k} M[π_i, π_k]` among the remaining taxa. Inserting species in
/// this order makes the per-species lower-bound contributions as large as
/// possible as early as possible, which tightens pruning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxminPermutation {
    order: Vec<usize>,
}

impl MaxminPermutation {
    /// Computes a maxmin permutation greedily in `O(n²)`.
    ///
    /// Ties break toward smaller taxon indices, so the result is
    /// deterministic.
    pub fn compute(m: &DistanceMatrix) -> Self {
        let n = m.len();
        let (a, b, _) = m.max_pair();
        let mut order = Vec::with_capacity(n);
        order.push(a);
        order.push(b);
        let mut chosen = vec![false; n];
        chosen[a] = true;
        chosen[b] = true;
        // min_to_chosen[t] = min distance from t to any already-chosen taxon.
        let mut min_to_chosen: Vec<f64> = (0..n).map(|t| m.get(t, a).min(m.get(t, b))).collect();
        for _ in 2..n {
            let mut best: Option<usize> = None;
            for t in 0..n {
                if chosen[t] {
                    continue;
                }
                match best {
                    None => best = Some(t),
                    Some(cur) if min_to_chosen[t] > min_to_chosen[cur] => best = Some(t),
                    _ => {}
                }
            }
            let t = best.expect("unchosen taxon exists");
            chosen[t] = true;
            order.push(t);
            for u in 0..n {
                if !chosen[u] {
                    min_to_chosen[u] = min_to_chosen[u].min(m.get(u, t));
                }
            }
        }
        MaxminPermutation { order }
    }

    /// The permutation: `order()[k]` is the original index of the taxon that
    /// becomes taxon `k` after relabeling.
    #[inline]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Applies the permutation to the matrix it was computed from.
    pub fn apply(&self, m: &DistanceMatrix) -> DistanceMatrix {
        m.permute(&self.order)
    }

    /// The inverse permutation: `inverse()[t]` is the relabeled index of
    /// original taxon `t`. Mapping a tree built in relabeled indexing
    /// back to original taxa goes through [`order`](Self::order); mapping
    /// an original-indexed tree *into* relabeled indexing (checkpoint
    /// resume, cache warm seeds) goes through this.
    pub fn inverse(&self) -> Vec<usize> {
        let mut inv = vec![0usize; self.order.len()];
        for (k, &orig) in self.order.iter().enumerate() {
            inv[orig] = k;
        }
        inv
    }

    /// Checks the maxmin property on a matrix, within additive tolerance
    /// `tol`. Mostly useful in tests.
    pub fn is_maxmin_for(&self, m: &DistanceMatrix, tol: f64) -> bool {
        let n = m.len();
        if self.order.len() != n {
            return false;
        }
        let o = &self.order;
        if m.get(o[0], o[1]) + tol < m.max_distance() {
            return false;
        }
        for k in 2..n {
            let mink = (0..k)
                .map(|i| m.get(o[i], o[k]))
                .fold(f64::INFINITY, f64::min);
            for t in (k + 1)..n {
                let mint = (0..k)
                    .map(|i| m.get(o[i], o[t]))
                    .fold(f64::INFINITY, f64::min);
                if mint > mink + tol {
                    return false;
                }
            }
        }
        true
    }
}

impl DistanceMatrix {
    /// Convenience wrapper around [`MaxminPermutation::compute`].
    pub fn maxmin_permutation(&self) -> MaxminPermutation {
        MaxminPermutation::compute(self)
    }

    /// The *subdominant ultrametric* of the matrix: the largest ultrametric
    /// dominated by it, given by minimax path distances
    /// `d'(i, j) = min over paths p from i to j of max edge on p`
    /// (a Floyd–Warshall pass with `(max, min)` in place of `(+, min)`).
    ///
    /// This is exactly the leaf-distance matrix of the single-linkage
    /// dendrogram, and it lower-bounds every ultrametric matrix below `M` —
    /// the classical dual of the minimum ultrametric tree problem (which
    /// asks for a cheap ultrametric *above* `M`).
    pub fn subdominant_ultrametric(&self) -> DistanceMatrix {
        let n = self.len();
        let mut full: Vec<f64> = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                full.push(self.get(i, j));
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = full[i * n + k];
                for j in 0..n {
                    let through = dik.max(full[k * n + j]);
                    if through < full[i * n + j] {
                        full[i * n + j] = through;
                    }
                }
            }
        }
        let mut out = self.clone();
        for i in 1..n {
            for j in 0..i {
                out.set(i, j, full[i * n + j]);
            }
        }
        out
    }

    /// Whether the matrix satisfies the **four-point condition** — for
    /// every quadruple, the two largest of the three pairings
    /// `d(i,j)+d(k,l)`, `d(i,k)+d(j,l)`, `d(i,l)+d(j,k)` are equal within
    /// `tol`. Additive matrices are exactly those realizable by an
    /// edge-weighted tree (neighbor joining recovers them exactly);
    /// every ultrametric matrix is additive. `O(n⁴)`.
    pub fn is_additive(&self, tol: f64) -> bool {
        let n = self.len();
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    for l in (k + 1)..n {
                        let mut s = [
                            self.get(i, j) + self.get(k, l),
                            self.get(i, k) + self.get(j, l),
                            self.get(i, l) + self.get(j, k),
                        ];
                        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                        if (s[2] - s[1]).abs() > tol {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 4.0, 2.0, 9.0, 5.0, 8.0],
            vec![4.0, 0.0, 4.0, 9.0, 5.0, 8.0],
            vec![2.0, 4.0, 0.0, 9.0, 5.0, 8.0],
            vec![9.0, 9.0, 9.0, 0.0, 9.0, 3.0],
            vec![5.0, 5.0, 5.0, 9.0, 0.0, 8.0],
            vec![8.0, 8.0, 8.0, 3.0, 8.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn starts_with_max_pair() {
        let m = sample();
        let p = m.maxmin_permutation();
        let o = p.order();
        assert_eq!(m.get(o[0], o[1]), 9.0);
    }

    #[test]
    fn satisfies_maxmin_property() {
        let m = sample();
        let p = m.maxmin_permutation();
        assert!(p.is_maxmin_for(&m, 1e-9));
    }

    #[test]
    fn is_a_permutation() {
        let m = sample();
        let p = m.maxmin_permutation();
        let mut sorted = p.order().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn apply_matches_permute() {
        let m = sample();
        let p = m.maxmin_permutation();
        assert_eq!(p.apply(&m), m.permute(p.order()));
    }

    #[test]
    fn detects_non_maxmin() {
        let m = sample();
        let bad = MaxminPermutation {
            order: vec![0, 1, 2, 3, 4, 5],
        };
        // (0, 1) has distance 4 < max distance 9.
        assert!(!bad.is_maxmin_for(&m, 1e-9));
    }

    #[test]
    fn subdominant_is_ultrametric_and_dominated() {
        let m = sample();
        let u = m.subdominant_ultrametric();
        assert!(u.is_ultrametric(1e-9));
        for (i, j, d) in u.pairs() {
            assert!(d <= m.get(i, j) + 1e-12);
        }
        // Idempotent on ultrametric input.
        assert_eq!(u.subdominant_ultrametric(), u);
    }

    #[test]
    fn subdominant_uses_minimax_paths() {
        let mut m = DistanceMatrix::zeros(3).unwrap();
        m.set(0, 1, 1.0);
        m.set(1, 2, 2.0);
        m.set(0, 2, 10.0); // the path 0-1-2 has max edge 2
        let u = m.subdominant_ultrametric();
        assert_eq!(u.get(0, 2), 2.0);
        assert_eq!(u.get(0, 1), 1.0);
    }

    #[test]
    fn four_point_condition() {
        // An additive (tree-realizable) but non-ultrametric matrix.
        let additive = DistanceMatrix::from_rows(&[
            vec![0.0, 5.0, 9.0, 9.0],
            vec![5.0, 0.0, 10.0, 10.0],
            vec![9.0, 10.0, 0.0, 8.0],
            vec![9.0, 10.0, 8.0, 0.0],
        ])
        .unwrap();
        assert!(additive.is_additive(1e-9));
        assert!(!additive.is_ultrametric(1e-9));

        // Ultrametric ⊂ additive.
        let um = DistanceMatrix::from_rows(&[
            vec![0.0, 2.0, 8.0, 8.0],
            vec![2.0, 0.0, 8.0, 8.0],
            vec![8.0, 8.0, 0.0, 4.0],
            vec![8.0, 8.0, 4.0, 0.0],
        ])
        .unwrap();
        assert!(um.is_additive(1e-9));

        // Perturbing a distance that participates in the two dominant
        // pairing sums breaks the condition.
        let mut bad = additive.clone();
        bad.set(0, 2, 12.0);
        assert!(!bad.is_additive(1e-9));
    }

    #[test]
    fn two_taxa_trivial() {
        let m = DistanceMatrix::from_rows(&[vec![0.0, 5.0], vec![5.0, 0.0]]).unwrap();
        let p = m.maxmin_permutation();
        assert!(p.is_maxmin_for(&m, 1e-9));
        assert_eq!(p.order().len(), 2);
    }

    #[test]
    fn inverse_inverts_order() {
        let p = sample().maxmin_permutation();
        let inv = p.inverse();
        for (k, &orig) in p.order().iter().enumerate() {
            assert_eq!(inv[orig], k);
        }
    }
}
