use std::fmt;

/// Errors produced when constructing or parsing a [`DistanceMatrix`].
///
/// [`DistanceMatrix`]: crate::DistanceMatrix
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// The matrix has fewer than two taxa.
    TooSmall {
        /// Number of taxa supplied.
        n: usize,
    },
    /// A row does not have the expected number of columns.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Expected number of columns.
        expected: usize,
        /// Number of columns found.
        found: usize,
    },
    /// A diagonal entry is non-zero.
    NonZeroDiagonal {
        /// Index of the offending diagonal entry.
        index: usize,
        /// The non-zero value found.
        value: f64,
    },
    /// Entries `(i, j)` and `(j, i)` disagree.
    Asymmetric {
        /// Row index of the offending pair.
        i: usize,
        /// Column index of the offending pair.
        j: usize,
    },
    /// An off-diagonal entry is negative.
    InvalidDistance {
        /// Row index of the entry.
        i: usize,
        /// Column index of the entry.
        j: usize,
        /// The invalid value found.
        value: f64,
    },
    /// An off-diagonal entry is NaN or infinite. Reported separately from
    /// [`MatrixError::InvalidDistance`] because non-finite values usually
    /// point at an upstream computation bug (0/0 alignment scores, overflow)
    /// rather than bad data, and they would poison every downstream
    /// comparison the solvers make.
    NotFinite {
        /// Row index of the entry.
        i: usize,
        /// Column index of the entry.
        j: usize,
        /// The non-finite value found.
        value: f64,
    },
    /// Failure while parsing a PHYLIP-style matrix.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::TooSmall { n } => {
                write!(f, "a distance matrix needs at least 2 taxa, got {n}")
            }
            MatrixError::RaggedRow {
                row,
                expected,
                found,
            } => write!(f, "row {row} has {found} entries, expected {expected}"),
            MatrixError::NonZeroDiagonal { index, value } => {
                write!(
                    f,
                    "diagonal entry ({index}, {index}) is {value}, expected 0"
                )
            }
            MatrixError::Asymmetric { i, j } => {
                write!(f, "entries ({i}, {j}) and ({j}, {i}) disagree")
            }
            MatrixError::InvalidDistance { i, j, value } => {
                write!(f, "entry ({i}, {j}) = {value} is negative")
            }
            MatrixError::NotFinite { i, j, value } => {
                write!(f, "entry ({i}, {j}) = {value} is not finite")
            }
            MatrixError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}
