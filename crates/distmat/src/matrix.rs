use crate::MatrixError;

/// A symmetric `n × n` matrix of pairwise distances between taxa.
///
/// Distances are stored as a packed strict lower triangle (`n(n-1)/2`
/// entries), so symmetry and a zero diagonal hold by construction. All
/// distances must be finite and non-negative.
///
/// Taxa are identified by index `0..n`; optional human-readable labels can be
/// attached with [`DistanceMatrix::set_labels`] and survive permutation and
/// submatrix extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Strict lower triangle, row-major: entry `(i, j)` with `j < i` lives at
    /// `i(i-1)/2 + j`.
    data: Vec<f64>,
    labels: Option<Vec<String>>,
}

#[inline]
fn tri_index(i: usize, j: usize) -> usize {
    debug_assert!(j < i);
    i * (i - 1) / 2 + j
}

impl DistanceMatrix {
    /// Creates a zero matrix over `n` taxa.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::TooSmall`] when `n < 2`.
    pub fn zeros(n: usize) -> Result<Self, MatrixError> {
        if n < 2 {
            return Err(MatrixError::TooSmall { n });
        }
        Ok(DistanceMatrix {
            n,
            data: vec![0.0; n * (n - 1) / 2],
            labels: None,
        })
    }

    /// Builds a matrix from full square rows.
    ///
    /// # Errors
    ///
    /// Returns an error when the rows are ragged, the diagonal is non-zero,
    /// the matrix is asymmetric, any entry is negative
    /// ([`MatrixError::InvalidDistance`]) or NaN/infinite
    /// ([`MatrixError::NotFinite`]).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MatrixError> {
        let n = rows.len();
        let mut m = DistanceMatrix::zeros(n)?;
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(MatrixError::RaggedRow {
                    row: i,
                    expected: n,
                    found: row.len(),
                });
            }
            if row[i] != 0.0 {
                return Err(MatrixError::NonZeroDiagonal {
                    index: i,
                    value: row[i],
                });
            }
            for (j, &v) in row.iter().enumerate().take(i) {
                if !v.is_finite() {
                    return Err(MatrixError::NotFinite { i, j, value: v });
                }
                if v < 0.0 {
                    return Err(MatrixError::InvalidDistance { i, j, value: v });
                }
                if (v - rows[j][i]).abs() > 1e-12 * (1.0 + v.abs()) {
                    return Err(MatrixError::Asymmetric { i, j });
                }
                m.set(i, j, v);
            }
        }
        Ok(m)
    }

    /// Builds a matrix from its packed strict lower triangle
    /// (row-major: `(1,0), (2,0), (2,1), (3,0), …`).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::TooSmall`] when `n < 2`,
    /// [`MatrixError::RaggedRow`] when `condensed.len() != n(n-1)/2`,
    /// [`MatrixError::InvalidDistance`] for negative entries and
    /// [`MatrixError::NotFinite`] for NaN/infinite entries.
    pub fn from_condensed(n: usize, condensed: Vec<f64>) -> Result<Self, MatrixError> {
        if n < 2 {
            return Err(MatrixError::TooSmall { n });
        }
        let expected = n * (n - 1) / 2;
        if condensed.len() != expected {
            return Err(MatrixError::RaggedRow {
                row: 0,
                expected,
                found: condensed.len(),
            });
        }
        for (k, &v) in condensed.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                // Recover (i, j) from the packed index for the error report.
                let mut i = 1;
                while tri_index(i + 1, 0) <= k {
                    i += 1;
                }
                let j = k - tri_index(i, 0);
                return Err(if v.is_finite() {
                    MatrixError::InvalidDistance { i, j, value: v }
                } else {
                    MatrixError::NotFinite { i, j, value: v }
                });
            }
        }
        Ok(DistanceMatrix {
            n,
            data: condensed,
            labels: None,
        })
    }

    /// Number of taxa.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: a matrix has at least two taxa.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Distance between taxa `i` and `j` (zero when `i == j`).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "taxon index out of bounds");
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Greater => self.data[tri_index(i, j)],
            std::cmp::Ordering::Less => self.data[tri_index(j, i)],
        }
    }

    /// Median of the three pairwise distances of a leaf triple: in any
    /// ultrametric realization two of the triple's tree distances equal
    /// twice their common top height and each dominates its matrix
    /// entry, so `2·h(top) ≥ triple_med(i, j, s)` — the height floor the
    /// constraint-propagation stage reads through this accessor.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[inline]
    pub fn triple_med(&self, i: usize, j: usize, s: usize) -> f64 {
        let (a, b, c) = (self.get(i, j), self.get(i, s), self.get(j, s));
        a.max(b).min(a.max(c)).min(b.max(c))
    }

    /// Sets the distance between distinct taxa `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds, when `i == j`, or when `value`
    /// is negative or non-finite.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "taxon index out of bounds");
        assert!(i != j, "cannot set a diagonal entry");
        assert!(
            value.is_finite() && value >= 0.0,
            "distances must be finite and non-negative"
        );
        let idx = if i > j {
            tri_index(i, j)
        } else {
            tri_index(j, i)
        };
        self.data[idx] = value;
    }

    /// The packed strict lower triangle, row-major.
    #[inline]
    pub fn condensed(&self) -> &[f64] {
        &self.data
    }

    /// Attaches taxon labels.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len() != self.len()`.
    pub fn set_labels<I, S>(&mut self, labels: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        assert_eq!(labels.len(), self.n, "one label per taxon required");
        self.labels = Some(labels);
    }

    /// Taxon labels, if any were attached.
    #[inline]
    pub fn labels(&self) -> Option<&[String]> {
        self.labels.as_deref()
    }

    /// Label of taxon `i`, or its index rendered as `t<i>` when unlabeled.
    pub fn label(&self, i: usize) -> String {
        match &self.labels {
            Some(l) => l[i].clone(),
            None => format!("t{i}"),
        }
    }

    /// Iterates over all unordered pairs `(i, j, distance)` with `i < j`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (1..self.n).flat_map(move |i| (0..i).map(move |j| (j, i, self.data[tri_index(i, j)])))
    }

    /// The pair of taxa at maximum distance, as `(i, j, distance)` with
    /// `i < j`. Ties break toward the lexicographically smallest pair.
    pub fn max_pair(&self) -> (usize, usize, f64) {
        let mut best = (0, 1, self.get(0, 1));
        for (i, j, d) in self.pairs() {
            if d > best.2 {
                best = (i, j, d);
            }
        }
        best
    }

    /// The smallest off-diagonal distance.
    pub fn min_distance(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The largest off-diagonal distance.
    pub fn max_distance(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Whether the triangle inequality `M[i,j] + M[j,k] ≥ M[i,k]` holds for
    /// all triples, within additive tolerance `tol`.
    pub fn is_metric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let dij = self.get(i, j);
                for k in (j + 1)..self.n {
                    let dik = self.get(i, k);
                    let djk = self.get(j, k);
                    if dij + djk + tol < dik || dij + dik + tol < djk || dik + djk + tol < dij {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Whether the three-point condition
    /// `M[i,j] ≤ max(M[i,k], M[j,k])` holds for all triples, within additive
    /// tolerance `tol`. Ultrametric matrices correspond exactly to
    /// ultrametric trees whose leaf distances equal the matrix.
    pub fn is_ultrametric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let dij = self.get(i, j);
                for k in (j + 1)..self.n {
                    let dik = self.get(i, k);
                    let djk = self.get(j, k);
                    // In an ultrametric the two largest of the three pairwise
                    // distances are equal; equivalently each distance is at
                    // most the max of the other two.
                    if dij > dik.max(djk) + tol
                        || dik > dij.max(djk) + tol
                        || djk > dij.max(dik) + tol
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Metric closure: replaces every distance with the shortest-path
    /// distance in the complete weighted graph (Floyd–Warshall, `O(n³)`).
    ///
    /// The result satisfies the triangle inequality and never exceeds the
    /// original entrywise. Distances of an already-metric matrix are
    /// unchanged.
    pub fn metric_closure(&self) -> DistanceMatrix {
        let n = self.n;
        let mut full: Vec<f64> = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                full.push(self.get(i, j));
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = full[i * n + k];
                for j in 0..n {
                    let through = dik + full[k * n + j];
                    if through < full[i * n + j] {
                        full[i * n + j] = through;
                    }
                }
            }
        }
        let mut out = self.clone();
        for i in 1..n {
            for j in 0..i {
                out.data[tri_index(i, j)] = full[i * n + j];
            }
        }
        out
    }

    /// Returns the matrix reindexed so that new taxon `k` is old taxon
    /// `perm[k]`. Labels are carried along.
    ///
    /// # Panics
    ///
    /// Panics when `perm` is not a permutation of `0..n`.
    pub fn permute(&self, perm: &[usize]) -> DistanceMatrix {
        assert_eq!(perm.len(), self.n, "permutation length must equal n");
        let mut seen = vec![false; self.n];
        for &p in perm {
            assert!(p < self.n && !seen[p], "not a permutation of 0..n");
            seen[p] = true;
        }
        let mut out = DistanceMatrix::zeros(self.n).expect("n >= 2");
        for i in 1..self.n {
            for j in 0..i {
                out.data[tri_index(i, j)] = self.get(perm[i], perm[j]);
            }
        }
        if let Some(labels) = &self.labels {
            out.labels = Some(perm.iter().map(|&p| labels[p].clone()).collect());
        }
        out
    }

    /// Extracts the submatrix over the given taxa, in the given order.
    /// Labels are carried along.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::TooSmall`] when fewer than two taxa are
    /// selected.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds or repeated.
    pub fn submatrix(&self, taxa: &[usize]) -> Result<DistanceMatrix, MatrixError> {
        if taxa.len() < 2 {
            return Err(MatrixError::TooSmall { n: taxa.len() });
        }
        let mut seen = vec![false; self.n];
        for &t in taxa {
            assert!(
                t < self.n && !seen[t],
                "taxa must be distinct and in bounds"
            );
            seen[t] = true;
        }
        let mut out = DistanceMatrix::zeros(taxa.len())?;
        for i in 1..taxa.len() {
            for j in 0..i {
                out.data[tri_index(i, j)] = self.get(taxa[i], taxa[j]);
            }
        }
        if let Some(labels) = &self.labels {
            out.labels = Some(taxa.iter().map(|&t| labels[t].clone()).collect());
        }
        Ok(out)
    }

    /// Maximum relative deviation `|a − b| / max(1, |a|)` against another
    /// matrix of the same size; useful for comparing reconstructions.
    ///
    /// # Panics
    ///
    /// Panics when the sizes differ.
    pub fn max_relative_deviation(&self, other: &DistanceMatrix) -> f64 {
        assert_eq!(self.n, other.n, "matrices must have the same size");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs() / 1f64.max(a.abs()))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistanceMatrix {
        // The 6-taxon example matrix style of the paper's Fig. 1.
        DistanceMatrix::from_rows(&[
            vec![0.0, 4.0, 2.0, 9.0, 5.0, 8.0],
            vec![4.0, 0.0, 4.0, 9.0, 5.0, 8.0],
            vec![2.0, 4.0, 0.0, 9.0, 5.0, 8.0],
            vec![9.0, 9.0, 9.0, 0.0, 9.0, 3.0],
            vec![5.0, 5.0, 5.0, 9.0, 0.0, 8.0],
            vec![8.0, 8.0, 8.0, 3.0, 8.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn zeros_rejects_tiny() {
        assert!(matches!(
            DistanceMatrix::zeros(1),
            Err(MatrixError::TooSmall { n: 1 })
        ));
        assert!(DistanceMatrix::zeros(2).is_ok());
    }

    #[test]
    fn get_set_roundtrip_symmetric() {
        let mut m = DistanceMatrix::zeros(4).unwrap();
        m.set(1, 3, 7.5);
        assert_eq!(m.get(1, 3), 7.5);
        assert_eq!(m.get(3, 1), 7.5);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn set_diagonal_panics() {
        let mut m = DistanceMatrix::zeros(3).unwrap();
        m.set(1, 1, 1.0);
    }

    #[test]
    fn from_rows_detects_asymmetry() {
        let err = DistanceMatrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 0.0]]).unwrap_err();
        assert!(matches!(err, MatrixError::Asymmetric { i: 1, j: 0 }));
    }

    #[test]
    fn from_rows_detects_bad_diagonal_and_negative() {
        let err = DistanceMatrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 0.0]]).unwrap_err();
        assert!(matches!(err, MatrixError::NonZeroDiagonal { index: 0, .. }));

        let err = DistanceMatrix::from_rows(&[vec![0.0, -1.0], vec![-1.0, 0.0]]).unwrap_err();
        assert!(matches!(err, MatrixError::InvalidDistance { .. }));
    }

    #[test]
    fn non_finite_entries_are_rejected_with_their_own_error() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = DistanceMatrix::from_rows(&[vec![0.0, bad], vec![bad, 0.0]]).unwrap_err();
            assert!(
                matches!(err, MatrixError::NotFinite { i: 1, j: 0, .. }),
                "{bad}: {err:?}"
            );
            let err = DistanceMatrix::from_condensed(3, vec![1.0, bad, 2.0]).unwrap_err();
            assert!(
                matches!(err, MatrixError::NotFinite { i: 2, j: 0, .. }),
                "{bad}: {err:?}"
            );
        }
        // Negative stays a plain invalid distance, not NotFinite.
        let err = DistanceMatrix::from_condensed(3, vec![1.0, -2.0, 2.0]).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::InvalidDistance { i: 2, j: 0, .. }
        ));
    }

    #[test]
    fn from_condensed_roundtrip() {
        let m = sample();
        let again = DistanceMatrix::from_condensed(6, m.condensed().to_vec()).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn from_condensed_length_check() {
        assert!(DistanceMatrix::from_condensed(4, vec![1.0; 5]).is_err());
        assert!(DistanceMatrix::from_condensed(4, vec![1.0; 6]).is_ok());
    }

    #[test]
    fn pairs_enumerates_all() {
        let m = sample();
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs.len(), 15);
        assert!(pairs.iter().all(|&(i, j, _)| i < j));
        assert!(pairs.iter().any(|&(i, j, d)| (i, j, d) == (0, 2, 2.0)));
    }

    #[test]
    fn max_pair_and_extremes() {
        let m = sample();
        let (i, j, d) = m.max_pair();
        assert_eq!(d, 9.0);
        assert!(i < j);
        assert_eq!(m.min_distance(), 2.0);
        assert_eq!(m.max_distance(), 9.0);
    }

    #[test]
    fn metric_and_ultrametric_predicates() {
        let m = sample();
        assert!(m.is_metric(1e-9));

        let um = DistanceMatrix::from_rows(&[
            vec![0.0, 2.0, 8.0, 8.0],
            vec![2.0, 0.0, 8.0, 8.0],
            vec![8.0, 8.0, 0.0, 4.0],
            vec![8.0, 8.0, 4.0, 0.0],
        ])
        .unwrap();
        assert!(um.is_ultrametric(1e-9));
        assert!(um.is_metric(1e-9));

        let mut not_um = um.clone();
        not_um.set(0, 2, 20.0);
        assert!(!not_um.is_ultrametric(1e-9));
    }

    #[test]
    fn closure_fixes_triangle_violations() {
        let mut m = DistanceMatrix::zeros(3).unwrap();
        m.set(0, 1, 1.0);
        m.set(1, 2, 1.0);
        m.set(0, 2, 10.0); // violates triangle inequality
        assert!(!m.is_metric(1e-9));
        let c = m.metric_closure();
        assert!(c.is_metric(1e-9));
        assert_eq!(c.get(0, 2), 2.0);
        assert_eq!(c.get(0, 1), 1.0);
    }

    #[test]
    fn closure_is_identity_on_metrics() {
        let m = sample();
        assert_eq!(m.metric_closure(), m);
    }

    #[test]
    fn permute_moves_labels_and_distances() {
        let mut m = sample();
        m.set_labels((0..6).map(|i| format!("sp{i}")));
        let perm = [5, 4, 3, 2, 1, 0];
        let p = m.permute(&perm);
        assert_eq!(p.get(0, 1), m.get(5, 4));
        assert_eq!(p.label(0), "sp5");
        // Double reversal is the identity.
        assert_eq!(p.permute(&perm), m);
    }

    #[test]
    fn submatrix_extracts_in_order() {
        let m = sample();
        let s = m.submatrix(&[3, 5, 0]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0, 1), m.get(3, 5));
        assert_eq!(s.get(1, 2), m.get(5, 0));
        assert!(m.submatrix(&[2]).is_err());
    }

    #[test]
    fn deviation_zero_on_self() {
        let m = sample();
        assert_eq!(m.max_relative_deviation(&m), 0.0);
    }
}
