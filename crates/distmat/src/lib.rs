//! Symmetric distance matrices for phylogenetic reconstruction.
//!
//! This crate provides the [`DistanceMatrix`] type used throughout `mutree`,
//! together with the matrix-level operations the PaCT 2005 paper relies on:
//!
//! * predicates — [`DistanceMatrix::is_metric`] (triangle inequality) and
//!   [`DistanceMatrix::is_ultrametric`] (three-point condition),
//! * repair — [`DistanceMatrix::metric_closure`] (Floyd–Warshall shortest
//!   paths, turning an arbitrary non-negative symmetric matrix into a metric),
//! * orderings — [`DistanceMatrix::maxmin_permutation`], the species
//!   relabeling required by the Wu–Chao–Tang branch-and-bound lower bound,
//! * slicing — [`DistanceMatrix::submatrix`] and
//!   [`DistanceMatrix::permute`], used by the compact-set decomposition,
//! * solver layout — [`SolverMatrix`], the blocked row-major, padded,
//!   cache-line-aligned copy the branch-and-bound bound kernels read
//!   (built once per solve, after the maxmin relabeling),
//! * I/O — PHYLIP-style square matrix parsing and formatting ([`io`]),
//! * workload generation — random metric and perturbed-ultrametric matrices
//!   ([`gen`]), matching the paper's "randomly generated species matrix"
//!   experiments (values 0–100, triangle inequality enforced).
//!
//! # Example
//!
//! ```
//! use mutree_distmat::DistanceMatrix;
//!
//! let m = DistanceMatrix::from_rows(&[
//!     vec![0.0, 2.0, 6.0],
//!     vec![2.0, 0.0, 6.0],
//!     vec![6.0, 6.0, 0.0],
//! ]).unwrap();
//! assert!(m.is_metric(1e-9));
//! assert!(m.is_ultrametric(1e-9));
//! assert_eq!(m.max_pair(), (0, 2, 6.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;
mod ops;
mod solver;

pub mod gen;
pub mod io;

pub use error::MatrixError;
pub use matrix::DistanceMatrix;
pub use ops::MaxminPermutation;
pub use solver::{SolverMatrix, LANE_BLOCK, WORD_LANES};
