//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! exactly the API surface the workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`] over integer and float ranges.
//!
//! The generator is SplitMix64 — deterministic, full-period over its
//! 64-bit state, and statistically solid for test-data generation. Its
//! stream differs from upstream `StdRng` (ChaCha12), which is fine here:
//! every in-repo use feeds seeded randomness into property checks that
//! must hold for *any* input.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (the one constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Rounding can land exactly on the (exclusive) upper endpoint.
        if v >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample an empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Maps 64 random bits to a float in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The random-generator interface: a raw 64-bit source plus the derived
/// sampling helpers the workspace calls.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `range` (half-open or inclusive, int or float).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64: Sebastiano Vigna's public-domain mixer. One u64 of
    /// state, passes BigCrush when used as here (sequential stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let n: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "heads = {heads}");
    }
}
