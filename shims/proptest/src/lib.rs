//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with [`Strategy::prop_map`], numeric
//! range strategies, tuple strategies, [`collection::vec`], [`any`], simple
//! `"[chars]{lo,hi}"` string patterns, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline test harness:
//! cases are generated from a seed derived from the test's module path and
//! name (deterministic across runs — failures reproduce by re-running the
//! test), and there is no shrinking: a failing case panics with the plain
//! assertion message.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// A generator seeded from a test's identifying string, so every test
    /// gets its own reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

/// String pattern strategy: a single character class with a repetition
/// count, `"[chars]{lo,hi}"` — the only regex shape the workspace's tests
/// use. Anything fancier panics with a clear message.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!(
                "string strategy {self:?} is not of the supported \
                 \"[chars]{{lo,hi}}\" form"
            )
        });
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix('{')?;
    let body = rest.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let chars: Vec<char> = class.chars().collect();
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "anything" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several magnitudes — pathological
        // bit patterns (NaN/∞) are injected explicitly where tests want them.
        let mag = rng.next_f64() * 1e6;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// The canonical strategy for `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` of `element` draws with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs each contained test function over many generated cases.
///
/// Supported shape (the upstream macro's common form):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0.0f64..1.0, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    __cfg.cases,
                    |__rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        // Mirror upstream: the body runs inside a
                        // `Result`-returning closure so `return Ok(())`
                        // (early case rejection) compiles.
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// The error side of a property body; upstream's `TestCaseError` reduced
/// to a reject/fail message. A body that returns `Err` fails the test;
/// `return Ok(())` early-exits one case (upstream's "reject" idiom).
pub type TestCaseError = String;

/// Drives one property over `cases` deterministic cases (used by the
/// [`proptest!`] expansion; not part of the public upstream API).
pub fn run_cases(
    name: &str,
    cases: u32,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    for i in 0..cases {
        if let Err(msg) = case(&mut rng) {
            panic!("property {name} failed at case {i}: {msg}");
        }
    }
}

/// Asserts a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_vecs_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (2usize..=5).generate(&mut rng);
            assert!((2..=5).contains(&y));
            let v = collection::vec(0.0f64..1.0, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
        }
    }

    #[test]
    fn string_pattern_generates_class_chars() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = "[ACGT]{0,25}".generate(&mut rng);
            assert!(s.len() <= 25);
            assert!(s.chars().all(|c| "ACGT".contains(c)));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::new(3);
        let strat = (1usize..4, any::<u64>()).prop_map(|(n, seed)| vec![seed; n]);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("x::z");
        assert_ne!(TestRng::from_name("x::y").next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(n in 1usize..10, f in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((0.0..1.0).contains(&f));
        }
    }
}
