//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of the criterion API the workspace's benches compile against:
//! [`Criterion`], [`Criterion::benchmark_group`] with the builder knobs,
//! `bench_function`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — run the closure for roughly the
//! configured measurement time and print mean wall-clock per iteration.
//! It is a smoke harness, not a statistics engine; the repo's serious
//! measurements live in `crates/bench`'s own binaries.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Measurement strategies (only wall-clock here).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_bench(id.as_ref(), self.warm_up_time, self.measurement_time, f);
        self
    }

    /// Called by [`criterion_main!`]; a no-op in this shim.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: std::marker::PhantomData<(&'a mut Criterion, M)>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the target sample count (accepted for API compatibility; this
    /// shim times for a fixed duration instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_bench(id.as_ref(), self.warm_up_time, self.measurement_time, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, warm_up: Duration, measure: Duration, mut f: F) {
    // Warm up and estimate per-iteration cost with a growing batch.
    let mut iters = 1u64;
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_secs(1);
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed > Duration::ZERO {
            per_iter = b.elapsed / iters.max(1) as u32;
        }
        if warm_start.elapsed() >= warm_up || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    // One measurement batch sized to fill the measurement window.
    let target = (measure.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64;
    let mut b = Bencher {
        iters: target,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed / target.max(1) as u32;
    println!("  {id}: {mean:?}/iter ({target} iters in {:?})", b.elapsed);
}

/// Declares a benchmark group as a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("tiny");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs() {
        benches();
    }
}
