//! `mutree` — minimum ultrametric evolutionary trees from distance matrices.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`distmat`] — distance matrices, predicates, permutations, generators;
//! * [`graph`] — weighted graphs, MSTs, union–find, **compact sets**;
//! * [`tree`] — ultrametric trees, UPGMA/UPGMM, Newick, tree metrics;
//! * [`bnb`] — the generic sequential / thread-parallel branch-and-bound
//!   engine with global and local pools;
//! * [`clustersim`] — a discrete-event PC-cluster simulator used to
//!   reproduce the paper's 16-node speedup experiments;
//! * [`seqgen`] — synthetic molecular sequence data and edit distances;
//! * [`engine`] — the solve spine: serializable
//!   [`SolveRequest`](engine::SolveRequest)s, environment-resolved
//!   [`SolvePlan`](engine::SolvePlan)s, unified
//!   [`SolveReport`](engine::SolveReport)s, and the content-addressed
//!   group-solve cache;
//! * [`serve`] — the solve daemon: length-prefixed TCP framing for the
//!   engine-spine codecs, earliest-deadline-first admission control, and
//!   the process-wide shared cache behind every connection;
//! * [`core`] — the PaCT 2005 contribution: exact minimum-ultrametric-tree
//!   search (Algorithm BBU, sequential, parallel and simulated-cluster), the
//!   3-3 relationship pruning rule, and the compact-set decomposition
//!   pipeline.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the mapping
//! from the paper's sections, tables and figures to modules and benchmarks.
//!
//! # Quickstart
//!
//! ```
//! use mutree::distmat::DistanceMatrix;
//! use mutree::core::{MutSolver, SearchBackend};
//!
//! let m = DistanceMatrix::from_rows(&[
//!     vec![0.0, 2.0, 8.0, 8.0],
//!     vec![2.0, 0.0, 8.0, 8.0],
//!     vec![8.0, 8.0, 0.0, 4.0],
//!     vec![8.0, 8.0, 4.0, 0.0],
//! ]).unwrap();
//! let solution = MutSolver::new().backend(SearchBackend::Sequential).solve(&m).unwrap();
//! assert_eq!(solution.tree.weight(), 11.0);
//! ```

#![forbid(unsafe_code)]

pub use mutree_bnb as bnb;
pub use mutree_clustersim as clustersim;
pub use mutree_core as core;
pub use mutree_distmat as distmat;
pub use mutree_engine as engine;
pub use mutree_graph as graph;
pub use mutree_seqgen as seqgen;
pub use mutree_serve as serve;
pub use mutree_tree as tree;
