//! A guided tour of the paper's §3 machinery on its running example:
//! complete graph → minimum spanning tree → compact sets → condensed
//! matrices → merged ultrametric tree.
//!
//! ```text
//! cargo run --release --example compact_sets_tour
//! ```

use mutree::core::CompactPipeline;
use mutree::distmat::DistanceMatrix;
use mutree::graph::{kruskal, CompactSets, WeightedGraph};
use mutree::tree::newick;

fn main() {
    // A 6-species instance shaped like the paper's Figs. 3–5 example:
    // vertices {0,2}, {0,1,2}, {0,1,2,4} and {3,5} form nested compact
    // sets.
    let m = DistanceMatrix::from_rows(&[
        vec![0.0, 3.0, 1.0, 7.0, 4.5, 6.5],
        vec![3.0, 0.0, 3.5, 7.2, 4.2, 6.8],
        vec![1.0, 3.5, 0.0, 7.5, 4.0, 6.9],
        vec![7.0, 7.2, 7.5, 0.0, 6.0, 2.0],
        vec![4.5, 4.2, 4.0, 6.0, 0.0, 5.0],
        vec![6.5, 6.8, 6.9, 2.0, 5.0, 0.0],
    ])
    .expect("valid matrix");

    // Step 1 (paper §3.1): the minimum spanning tree of the complete
    // distance graph, Kruskal's algorithm — edges come out weight-sorted,
    // exactly the processing order of the compact-set algorithm.
    let mst = kruskal(&WeightedGraph::from_matrix(&m)).expect("complete graph");
    println!("minimum spanning tree (weight {}):", mst.weight());
    for e in mst.edges() {
        println!("  ({}, {})  weight {}", e.u, e.v, e.weight);
    }

    // Step 2: merge in ascending order, test Max(A) < Min(A, !A).
    let cs = CompactSets::find(&m);
    println!("\ncompact sets (detection order):");
    for s in cs.iter() {
        println!(
            "  {:?}  Max = {}, Min(out) = {}",
            s.members(),
            s.max_internal(),
            s.min_crossing()
        );
    }

    // The laminar structure: which set nests in which.
    let forest = cs.forest();
    println!("\nlaminar forest ({} roots):", forest.roots.len());
    for node in &forest.nodes {
        let members = cs.as_slice()[node.set].members();
        match node.parent {
            Some(p) => println!(
                "  {:?} inside {:?}",
                members,
                cs.as_slice()[forest.nodes[p].set].members()
            ),
            None => println!("  {members:?} (maximal)"),
        }
    }

    // Step 3: cut into groups and show the paper's three condensed-matrix
    // flavors through the pipeline's linkage knob.
    for threshold in [4usize, 3, 2] {
        println!(
            "\nthreshold {threshold}: groups {:?}",
            cs.partition(threshold)
        );
    }

    // Step 4: the full fast construction.
    let sol = CompactPipeline::new()
        .threshold(4)
        .solve(&m)
        .expect("pipeline");
    println!(
        "\nmerged ultrametric tree (weight {}):\n{}",
        sol.weight,
        newick::to_newick(&sol.tree)
    );
    assert!(sol.tree.is_feasible_for(&m, 1e-9));
}
