//! The paper's motivating scenario, end to end: reconstruct a phylogeny
//! of mitochondrial-DNA-like sequences.
//!
//! 1. evolve synthetic mtDNA down a hidden genealogy;
//! 2. compute the edit-distance matrix (the paper's distance model);
//! 3. reconstruct with UPGMM (heuristic), exact branch-and-bound, and the
//!    compact-set fast technique;
//! 4. compare costs, times and topological faithfulness.
//!
//! ```text
//! cargo run --release --example hmdna_phylogeny
//! ```

use std::time::Instant;

use mutree::core::{CompactPipeline, MutSolver};
use mutree::seqgen::{
    distance_matrix, evolve, random_coalescent, random_root_sequence, to_fasta, DistanceKind,
    EvolutionParams, FastaRecord, SubstitutionModel,
};
use mutree::tree::{cluster, compare, newick, nj, triples, Linkage};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 24;
    let mut rng = StdRng::seed_from_u64(2005);

    // --- The hidden truth: a clock-like genealogy with rate variation.
    let truth = random_coalescent(n, 1.0, &mut rng);
    let params = EvolutionParams {
        model: SubstitutionModel::Kimura {
            transition_rate: 0.25,
            transversion_rate: 0.08,
        },
        indel_rate: 0.02,
        rate_variation: 0.3,
    };
    let root = random_root_sequence(150, &mut rng);
    let seqs = evolve(&truth, &root, &params, &mut rng);

    let records: Vec<FastaRecord> = seqs
        .iter()
        .enumerate()
        .map(|(i, seq)| FastaRecord {
            name: format!("HMDNA_{i:02}"),
            seq: seq.clone(),
        })
        .collect();
    println!("--- first two simulated sequences (FASTA) ---");
    print!("{}", to_fasta(&records[..2]));

    // --- The observable data: pairwise edit distances.
    let mut m = distance_matrix(&seqs, DistanceKind::Edit);
    m.set_labels((0..n).map(|i| format!("HMDNA_{i:02}")));
    println!(
        "\nedit-distance matrix: {n} species, max distance {}",
        m.max_distance()
    );

    // --- Reconstruction, three ways.
    let t = Instant::now();
    let mut upgmm = cluster(&m, Linkage::Maximum);
    upgmm.fit_heights(&m);
    let t_upgmm = t.elapsed();

    let t = Instant::now();
    let exact = MutSolver::new().solve(&m).expect("exact solve");
    let t_exact = t.elapsed();

    let t = Instant::now();
    let fast = CompactPipeline::new()
        .threshold(12)
        .solve(&m)
        .expect("pipeline solve");
    let t_fast = t.elapsed();

    println!(
        "\n{:<22} {:>10} {:>12} {:>16} {:>10}",
        "method", "cost", "time", "contradictions", "RF(truth)"
    );
    for (name, cost, time, tree) in [
        ("UPGMM (heuristic)", upgmm.weight(), t_upgmm, &upgmm),
        ("exact B&B", exact.weight, t_exact, &exact.tree),
        ("compact-set pipeline", fast.weight, t_fast, &fast.tree),
    ] {
        println!(
            "{:<22} {:>10.1} {:>12} {:>16} {:>10}",
            name,
            cost,
            format!("{time:.2?}"),
            triples::contradictions(tree, &m),
            compare::robinson_foulds(tree, &truth).expect("same taxa"),
        );
    }
    // Neighbor joining, the clock-free baseline: no ultrametric cost, but
    // it fits the raw distances more tightly.
    let njt = nj::neighbor_joining(&m);
    println!(
        "{:<22} {:>10} {:>12} {:>16} {:>10}",
        "neighbor joining",
        format!("{:.1}*", njt.total_length()),
        "-",
        "-",
        "-"
    );
    println!("  (* total tree length; NJ trees are unrooted and not clock-like)");
    println!(
        "mean distance distortion: NJ {:.4} vs exact MUT {:.4}",
        njt.mean_distortion(&m),
        {
            let mut total = 0.0;
            let mut count = 0;
            for (i, j, d) in m.pairs() {
                if d > 0.0 {
                    total += (exact.tree.leaf_distance(i, j).unwrap() - d).abs() / d;
                    count += 1;
                }
            }
            total / count as f64
        }
    );

    println!(
        "\npipeline used {} compact sets, groups: {:?}",
        fast.compact_sets,
        fast.groups.iter().map(Vec::len).collect::<Vec<_>>()
    );
    println!(
        "\nreconstructed phylogeny (fast technique):\n{}",
        newick::to_newick_with(&fast.tree, |t| m.label(t))
    );
    assert!(fast.tree.is_feasible_for(&m, 1e-9));
}
