//! Quickstart: exact minimum ultrametric tree from a small matrix.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mutree::core::{solution_newick, MutSolver, SearchBackend, SearchMode};
use mutree::distmat::DistanceMatrix;

fn main() {
    // Pairwise distances between five (imaginary) species.
    let mut m = DistanceMatrix::from_rows(&[
        vec![0.0, 9.0, 4.0, 6.0, 5.0],
        vec![9.0, 0.0, 7.0, 8.0, 6.0],
        vec![4.0, 7.0, 0.0, 3.0, 5.0],
        vec![6.0, 8.0, 3.0, 0.0, 5.0],
        vec![5.0, 6.0, 5.0, 5.0, 0.0],
    ])
    .expect("valid distance matrix");
    m.set_labels(["ape", "bat", "cat", "dog", "emu"]);

    // Exact search: enumerate every optimal ultrametric tree.
    let solution = MutSolver::new()
        .backend(SearchBackend::Parallel { workers: 2 })
        .mode(SearchMode::AllOptimal)
        .solve(&m)
        .expect("solvable instance");

    println!("minimum tree weight: {}", solution.weight);
    println!(
        "search effort: {} branched, {} pruned",
        solution.stats.branched, solution.stats.pruned
    );
    println!("optimal trees:");
    for tree in &solution.trees {
        assert!(tree.is_feasible_for(&m, 1e-9));
        println!(
            "  {}",
            mutree::tree::newick::to_newick_with(tree, |t| m.label(t))
        );
    }
    println!("first tree again: {}", solution_newick(&solution, &m));
}
