//! Reproduce the cluster-speedup story of the companion paper on your
//! laptop: run the identical branch-and-bound search on a simulated PC
//! cluster with 1, 2, 4, 8 and 16 slave nodes and watch how the virtual
//! makespan — and the explored node count — change.
//!
//! Because a better upper bound found by any slave is broadcast to all of
//! them, the 16-node run can explore *fewer* nodes than the 1-node run:
//! that is the mechanism behind the paper's super-linear speedups.
//!
//! ```text
//! cargo run --release --example cluster_speedup
//! ```

use mutree::clustersim::ClusterSpec;
use mutree::core::{MutSolver, SearchBackend};
use mutree::distmat::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(16);
    let m = gen::perturbed_ultrametric(18, 50.0, 0.2, &mut rng);
    println!("instance: 18 species, near-ultrametric with 20% noise\n");

    println!(
        "{:>7} {:>14} {:>10} {:>10} {:>9} {:>10}",
        "slaves", "makespan (s)", "speedup", "branched", "msgs", "util %"
    );
    let mut t1 = None;
    for slaves in [1usize, 2, 4, 8, 16] {
        let sol = MutSolver::new()
            .backend(SearchBackend::SimulatedCluster {
                spec: ClusterSpec::with_slaves(slaves),
            })
            .solve(&m)
            .expect("solve");
        let report = sol.sim.expect("simulated run has a report");
        let makespan = report.makespan;
        let t1 = *t1.get_or_insert(makespan);
        println!(
            "{:>7} {:>14.6} {:>9.2}x {:>10} {:>9} {:>9.1}",
            slaves,
            makespan,
            t1 / makespan,
            sol.stats.branched,
            report.total_messages(),
            100.0 * report.mean_utilization(),
        );
    }
    println!("\n(the optimum weight is identical at every cluster size)");
}
