//! Chaos tests of the daemon's fault isolation: a worker panic inside
//! one request's solve must become a `panicked` error frame for that
//! request alone — the daemon, its shared pool, its shared cache and
//! every other request keep working.
//!
//! The fault is injected with the same `panic_on_taxa` hook the
//! supervision tests use: the daemon's `fault_taxa` config threads it
//! into every solve, so a request whose matrix has exactly that many
//! taxa panics deterministically and every other size is untouched.

use mutree::core::SolveRequest;
use mutree::distmat::{gen, DistanceMatrix};
use mutree::engine::ServeErrorCode;
use mutree::serve::{Client, ClientError, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Taxon count whose solves the fault injection makes panic.
const DOOMED: usize = 7;

fn matrix(n: usize, seed: u64) -> DistanceMatrix {
    gen::perturbed_ultrametric(n, 50.0, 0.2, &mut StdRng::seed_from_u64(seed))
}

fn faulty_server() -> Server {
    let config = ServeConfig {
        fault_taxa: Some(DOOMED),
        workers: 2,
        threads: 2,
        ..ServeConfig::default()
    };
    Server::bind("127.0.0.1:0", config).expect("bind faulty daemon")
}

fn expect_panicked(outcome: Result<mutree::core::SolveReport, ClientError>) {
    match outcome {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ServeErrorCode::Panicked),
        other => panic!("a doomed solve must answer with a panicked frame, got {other:?}"),
    }
}

#[test]
fn a_panicking_request_fails_alone() {
    let server = faulty_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Healthy before, doomed, healthy after — all on one connection, so
    // the panic demonstrably neither killed the daemon nor the stream.
    let before = client
        .solve(&SolveRequest::exact(matrix(6, 1)))
        .expect("healthy solve before the panic");
    assert!(before.is_complete());
    expect_panicked(client.solve(&SolveRequest::exact(matrix(DOOMED, 2))));
    let after = client
        .solve(&SolveRequest::exact(matrix(8, 3)))
        .expect("healthy solve after the panic");
    assert!(after.is_complete());
    let summary = client.drain().expect("drain");
    assert_eq!(summary.served, 2);
    assert_eq!(summary.panicked, 1);
    server.join();
}

#[test]
fn concurrent_panics_do_not_poison_other_requests() {
    let server = faulty_server();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        // Four clients hammering the doomed size...
        for c in 0..4u64 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect doomed client");
                for k in 0..3u64 {
                    expect_panicked(
                        client.solve(&SolveRequest::exact(matrix(DOOMED, 0xbad + c * 10 + k))),
                    );
                }
            });
        }
        // ...interleaved with four clients doing real work.
        for c in 0..4u64 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect healthy client");
                for k in 0..3u64 {
                    let report = client
                        .solve(&SolveRequest::exact(matrix(6, 0x600d + c * 10 + k)))
                        .expect("healthy solve amid panics");
                    assert!(report.is_complete());
                }
            });
        }
    });
    let summary = Client::connect(addr)
        .expect("connect drain client")
        .drain()
        .expect("drain");
    assert_eq!(summary.served, 12);
    assert_eq!(summary.panicked, 12);
    assert_eq!(summary.cancelled + summary.shed + summary.errors, 0);
    server.join();
}

#[test]
fn the_shared_pool_survives_a_panic() {
    let server = faulty_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    expect_panicked(client.solve(&SolveRequest::exact(matrix(DOOMED, 40))));
    // A request that actually exercises the shared executor (decompose
    // pipelines fan their stage solves out on it) still completes, so
    // the pool the panicking solve ran on is demonstrably unharmed.
    let report = client
        .solve(&SolveRequest::decompose(matrix(12, 41)))
        .expect("pipeline solve after the panic");
    assert!(report.is_complete());
    client.drain().expect("drain");
    server.join();
}
