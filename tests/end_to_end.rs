//! Cross-crate integration: the full paper pipeline from simulated
//! sequences to a merged, serialized evolutionary tree.

use mutree::core::{CompactPipeline, MutSolver, SearchBackend, SearchMode};
use mutree::distmat::{io as mio, DistanceMatrix};
use mutree::graph::CompactSets;
use mutree::seqgen;
use mutree::tree::{newick, triples};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hmdna(n: usize, seed: u64) -> DistanceMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    seqgen::hmdna_like_matrix(n, 150, &mut rng)
}

#[test]
fn sequences_to_newick_and_back() {
    let m = hmdna(14, 1);
    assert!(m.is_metric(1e-9));

    let sol = CompactPipeline::new().threshold(8).solve(&m).unwrap();
    assert!(sol.tree.is_feasible_for(&m, 1e-9));
    assert_eq!(sol.tree.leaf_count(), 14);

    // Serialize with labels, parse back, verify distances survive.
    let text = newick::to_newick_with(&sol.tree, |t| m.label(t));
    let (parsed, names) = newick::parse_newick(&text).unwrap();
    assert_eq!(parsed.leaf_count(), 14);
    let index_of = |name: &str| {
        (0..m.len())
            .find(|&i| m.label(i) == name)
            .expect("label round-trips")
    };
    for (a, na) in names.iter().enumerate() {
        for (b, nb) in names.iter().enumerate().skip(a + 1) {
            let want = sol.tree.leaf_distance(index_of(na), index_of(nb)).unwrap();
            let got = parsed.leaf_distance(a, b).unwrap();
            assert!((want - got).abs() < 1e-6);
        }
    }
}

#[test]
fn phylip_roundtrip_preserves_solutions() {
    let m = hmdna(10, 2);
    let text = mio::to_phylip(&m);
    let parsed = mio::parse_phylip(&text).unwrap();
    let a = MutSolver::new().solve(&m).unwrap();
    let b = MutSolver::new().solve(&parsed).unwrap();
    assert!((a.weight - b.weight).abs() < 1e-9);
}

#[test]
fn exact_beats_or_matches_pipeline_and_upgmm() {
    for seed in 0..4 {
        let m = hmdna(12, 100 + seed);
        let exact = MutSolver::new().solve(&m).unwrap();
        let pipe = CompactPipeline::new().threshold(6).solve(&m).unwrap();
        let mut upgmm = mutree::tree::cluster(&m, mutree::tree::Linkage::Maximum);
        let upgmm_w = upgmm.fit_heights(&m);
        assert!(exact.weight <= pipe.weight + 1e-9, "seed {seed}");
        assert!(exact.weight <= upgmm_w + 1e-9, "seed {seed}");
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
    }
}

#[test]
fn all_backends_enumerate_the_same_optimal_set() {
    let m = hmdna(9, 3);
    let canonical = |trees: &[mutree::tree::UltrametricTree]| {
        let mut v: Vec<String> = trees.iter().map(newick::to_newick).collect();
        v.sort();
        v
    };
    let seq = MutSolver::new()
        .mode(SearchMode::AllOptimal)
        .solve(&m)
        .unwrap();
    let par = MutSolver::new()
        .mode(SearchMode::AllOptimal)
        .backend(SearchBackend::Parallel { workers: 3 })
        .solve(&m)
        .unwrap();
    let sim = MutSolver::new()
        .mode(SearchMode::AllOptimal)
        .backend(SearchBackend::SimulatedCluster {
            spec: mutree::clustersim::ClusterSpec::with_slaves(5),
        })
        .solve(&m)
        .unwrap();
    assert!((seq.weight - par.weight).abs() < 1e-9);
    assert!((seq.weight - sim.weight).abs() < 1e-9);
    assert_eq!(canonical(&seq.trees), canonical(&par.trees));
    assert_eq!(canonical(&seq.trees), canonical(&sim.trees));
}

#[test]
fn compact_sets_respect_the_pipeline_tree() {
    // Lemma 1: species inside a compact set share an LCA below any
    // outside species. The pipeline's merged tree guarantees this by
    // construction (each group becomes one subtree), so every triple
    // (i, j, out) with {i, j} inside a *group* and `out` outside must be
    // consistent with the matrix's (strict) nomination.
    let m = hmdna(13, 4);
    let cs = CompactSets::find(&m);
    let pipe = CompactPipeline::new().threshold(6).solve(&m).unwrap();
    let mut checked = 0;
    for group in pipe.groups.iter().filter(|g| g.len() >= 2) {
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                for out in 0..m.len() {
                    if group.contains(&out) {
                        continue;
                    }
                    // Groups come from compact sets, so the matrix
                    // nominates (i, j) strictly (Lemma 2)…
                    let din = m.get(group[i], group[j]);
                    let dout = m.get(group[i], out).min(m.get(group[j], out));
                    assert!(din < dout, "group is compact on the matrix");
                    // …and the merged tree must resolve it the same way.
                    assert!(
                        triples::is_consistent(&pipe.tree, &m, group[i], group[j], out),
                        "triple ({}, {}, {out}) contradicts the matrix",
                        group[i],
                        group[j]
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 0, "instance had compact structure: {}", cs.len());
}

#[test]
fn contradiction_counts_rank_methods_sensibly() {
    let m = hmdna(15, 5);
    let exact = MutSolver::new().solve(&m).unwrap();
    let pipe = CompactPipeline::new().threshold(8).solve(&m).unwrap();
    let exact_c = triples::contradictions(&exact.tree, &m);
    let pipe_c = triples::contradictions(&pipe.tree, &m);
    // Both should be far below the worst case (all constrained triples).
    let total = 15 * 14 * 13 / 6;
    assert!(exact_c < total / 4);
    assert!(pipe_c < total / 4);
}
