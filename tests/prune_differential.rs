//! Differential agreement between the prune-stage strategies: the
//! weight-only search, the always-on constraint-propagation search, and
//! the hybrid (shallow-prefix propagation) search must all find *the
//! same answer* — identical optimum weight to the bit and identical
//! topology (RF = 0) — on every driver and at every monomorphized leaf
//! width. Propagation is a valid-lower-bound tightening plus a pure 3-3
//! look-ahead, so it may only discard nodes whose completions the weight
//! prune (or the 3-3 feasibility check) would reject anyway; it must
//! also never *widen* the sequential search.
//!
//! `ThreeThree::Full` cases are included deliberately: that is the only
//! configuration where the triple-domain arm-wipeout masks are active,
//! so without it the sweep would exercise the height-floor bound alone.

use mutree::clustersim::ClusterSpec;
use mutree::core::{MutSolver, PruneStrategy, SearchBackend, ThreeThree};
use mutree::distmat::gen;
use mutree::seqgen;
use mutree::tree::compare::robinson_foulds;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const STRATEGIES: [PruneStrategy; 2] = [PruneStrategy::Propagate, PruneStrategy::Hybrid];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential, all leaf widths, both 3-3 settings: bit-identical
    /// weight, RF-0 topology, and a search that never grows.
    #[test]
    fn strategies_agree_sequentially_at_every_width(
        n in 6usize..10,
        seed in any::<u64>(),
        full_33 in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::perturbed_ultrametric(n, 60.0, 0.08, &mut rng);
        let rule = if full_33 { ThreeThree::Full } else { ThreeThree::Off };
        for words in [1usize, 2, 4] {
            let base = MutSolver::new()
                .leaf_words(words)
                .three_three(rule)
                .prune(PruneStrategy::WeightOnly)
                .solve(&m)
                .unwrap();
            for p in STRATEGIES {
                let sol = MutSolver::new()
                    .leaf_words(words)
                    .three_three(rule)
                    .prune(p)
                    .solve(&m)
                    .unwrap();
                prop_assert!(sol.is_complete(), "K={words} {rule:?} {p:?}");
                prop_assert_eq!(
                    base.weight.to_bits(), sol.weight.to_bits(),
                    "K={} {:?} {:?}: weight differs", words, rule, p
                );
                prop_assert_eq!(
                    robinson_foulds(&base.tree, &sol.tree).unwrap(), 0,
                    "K={} {:?} {:?}: topologies differ", words, rule, p
                );
                prop_assert!(
                    sol.stats.branched <= base.stats.branched,
                    "K={} {:?} {:?}: propagation widened the search ({} > {})",
                    words, rule, p, sol.stats.branched, base.stats.branched
                );
            }
        }
    }

    /// The thread-parallel and simulated-cluster drivers agree on the
    /// optimum under every strategy (parallel expansion order is
    /// scheduling-dependent, so the cross-driver contract is optimum +
    /// completeness; the deterministic sim also pins topology).
    #[test]
    fn strategies_agree_on_parallel_and_simulated_drivers(
        seed in any::<u64>(),
        full_33 in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::perturbed_ultrametric(8, 60.0, 0.08, &mut rng);
        let rule = if full_33 { ThreeThree::Full } else { ThreeThree::Off };
        let base = MutSolver::new()
            .three_three(rule)
            .prune(PruneStrategy::WeightOnly)
            .solve(&m)
            .unwrap();
        for p in STRATEGIES {
            let par = MutSolver::new()
                .three_three(rule)
                .prune(p)
                .backend(SearchBackend::Parallel { workers: 4 })
                .solve(&m)
                .unwrap();
            prop_assert!(par.is_complete(), "parallel {rule:?} {p:?}");
            prop_assert_eq!(
                base.weight.to_bits(), par.weight.to_bits(),
                "parallel {:?} {:?}: weight differs", rule, p
            );
            let sim = MutSolver::new()
                .three_three(rule)
                .prune(p)
                .backend(SearchBackend::SimulatedCluster {
                    spec: ClusterSpec::with_slaves(3),
                })
                .solve(&m)
                .unwrap();
            prop_assert!(sim.is_complete(), "sim {rule:?} {p:?}");
            prop_assert_eq!(
                base.weight.to_bits(), sim.weight.to_bits(),
                "sim {:?} {:?}: weight differs", rule, p
            );
            prop_assert_eq!(
                robinson_foulds(&base.tree, &sim.tree).unwrap(), 0,
                "sim {:?} {:?}: topologies differ", rule, p
            );
        }
    }
}

/// Sequence-derived workload under `Full` 3-3, where the triple domains
/// carry real close-pair structure: propagation must shrink (or at least
/// not grow) the search while reproducing the optimum bit for bit.
#[test]
fn propagation_shrinks_the_search_on_sequence_workloads() {
    let mut rng = StdRng::seed_from_u64(99);
    let m = seqgen::hmdna_like_matrix(11, 150, &mut rng);
    let base = MutSolver::new()
        .three_three(ThreeThree::Full)
        .prune(PruneStrategy::WeightOnly)
        .solve(&m)
        .unwrap();
    for p in STRATEGIES {
        let sol = MutSolver::new()
            .three_three(ThreeThree::Full)
            .prune(p)
            .solve(&m)
            .unwrap();
        assert_eq!(base.weight.to_bits(), sol.weight.to_bits(), "{p:?}");
        assert_eq!(robinson_foulds(&base.tree, &sol.tree).unwrap(), 0, "{p:?}");
        assert!(sol.stats.branched <= base.stats.branched, "{p:?}");
        assert_eq!(base.stats.propagation_pruned, 0);
    }
}

/// The env hook forces the strategy process-wide; the builder overrides
/// it when both are set, and junk values mean no override. Env mutation
/// is confined to this one test (same discipline as the bound-kernel
/// differential file).
#[test]
fn env_hook_forces_prune_strategy() {
    let mut rng = StdRng::seed_from_u64(6);
    let m = gen::uniform_metric(8, 1.0, 100.0, &mut rng);
    let solver = MutSolver::new();
    let prior = std::env::var_os("MUTREE_FORCE_PRUNE");
    std::env::remove_var("MUTREE_FORCE_PRUNE");
    assert_eq!(solver.dispatch_prune(), PruneStrategy::Propagate);

    std::env::set_var("MUTREE_FORCE_PRUNE", "weight");
    assert_eq!(solver.dispatch_prune(), PruneStrategy::WeightOnly);
    let forced = solver.solve(&m).unwrap();
    // Builder beats env.
    assert_eq!(
        solver
            .clone()
            .prune(PruneStrategy::Propagate)
            .dispatch_prune(),
        PruneStrategy::Propagate
    );
    std::env::set_var("MUTREE_FORCE_PRUNE", "propagate");
    assert_eq!(solver.dispatch_prune(), PruneStrategy::Propagate);
    // Junk values mean no override.
    std::env::set_var("MUTREE_FORCE_PRUNE", "clairvoyant");
    assert_eq!(solver.dispatch_prune(), PruneStrategy::Propagate);
    match prior {
        Some(v) => std::env::set_var("MUTREE_FORCE_PRUNE", v),
        None => std::env::remove_var("MUTREE_FORCE_PRUNE"),
    }

    let baseline = MutSolver::new()
        .prune(PruneStrategy::WeightOnly)
        .solve(&m)
        .unwrap();
    assert_eq!(forced.weight.to_bits(), baseline.weight.to_bits());
    assert_eq!(forced.stats.branched, baseline.stats.branched);
    assert_eq!(robinson_foulds(&forced.tree, &baseline.tree).unwrap(), 0);
}
