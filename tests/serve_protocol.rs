//! Black-box protocol tests of the solve daemon: a real `Server` on an
//! ephemeral port, driven by raw sockets and the replay [`Client`].
//!
//! The contract under test, end to end over TCP:
//!
//! * a daemon answer is **bit-identical** to an in-process `solve_plan`
//!   of the same request resolved against the same environment;
//! * a replayed request is answered from the process-wide shared cache,
//!   provenance `Cached`, bit-identical to the filing solve;
//! * malformed, truncated and oversized frames get clean error frames
//!   and never kill the daemon;
//! * a client disconnect cancels its in-flight request;
//! * concurrent clients all get correct answers;
//! * a drain finishes queued and in-flight work before acknowledging.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use mutree::core::{
    codec, solve_plan, EnvOverrides, SolvePlan, SolveReport, SolveRequest, StageProvenance,
};
use mutree::distmat::{gen, DistanceMatrix};
use mutree::engine::wire::{ERROR_HEADER, REPORT_HEADER};
use mutree::engine::ServeErrorCode;
use mutree::serve::{read_frame, write_frame, Client, ClientError, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic near-ultrametric test matrix; distinct seeds give
/// distinct matrices (and distinct cache keys, so tests sharing the
/// process-wide cache cannot contaminate each other).
fn matrix(n: usize, seed: u64) -> DistanceMatrix {
    gen::perturbed_ultrametric(n, 50.0, 0.2, &mut StdRng::seed_from_u64(seed))
}

/// Bit-level equality of two reports: optimum bits, every returned
/// tree's canonical codec bytes, stop reason and all 16 search counters.
/// (Full struct equality would also compare wall-clock stage timings,
/// which legitimately differ between two runs of the same search.)
fn assert_bit_identical(a: &SolveReport, b: &SolveReport) {
    assert_eq!(a.weight.to_bits(), b.weight.to_bits());
    assert_eq!(a.stop, b.stop);
    assert_eq!(codec::encode_tree(&a.tree), codec::encode_tree(&b.tree));
    assert_eq!(a.trees.len(), b.trees.len());
    for (x, y) in a.trees.iter().zip(&b.trees) {
        assert_eq!(codec::encode_tree(x), codec::encode_tree(y));
    }
}

#[test]
fn daemon_answers_bit_identically_to_in_process_solve_plan() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for seed in [11u64, 12, 13] {
        // Explicit cache choice so the daemon's cache-by-default policy
        // cannot make the two plans differ.
        let req = SolveRequest::exact(matrix(8, seed)).cache(false);
        let local = solve_plan(&SolvePlan::resolve(req.clone(), &EnvOverrides::capture()))
            .expect("in-process solve");
        let remote = client.solve(&req).expect("daemon solve");
        assert_bit_identical(&remote, &local);
        assert_eq!(remote.stats, local.stats);
    }
    client.drain().expect("drain");
    server.join();
}

#[test]
fn cache_hit_replay_is_cached_and_bit_identical() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Request leaves `cache` unset: the daemon's cache-by-default policy
    // is itself under test here.
    let req = SolveRequest::exact(matrix(9, 0xcac4e));
    let first = client.solve(&req).expect("filing solve");
    assert_eq!(first.stats.cache_hits, 0);
    assert_eq!(first.stats.cache_misses, 1);
    // The replay comes over a *different* connection: the cache is
    // process-wide, not per-client.
    let mut other = Client::connect(server.local_addr()).expect("connect second client");
    let replay = other.solve(&req).expect("replayed solve");
    assert_eq!(replay.stats.cache_hits, 1);
    assert_eq!(replay.timings.len(), 1);
    assert_eq!(replay.timings[0].provenance, StageProvenance::Cached);
    assert_bit_identical(&replay, &first);
    client.drain().expect("drain");
    server.join();
}

/// Reads one frame's payload as text, panicking on transport trouble.
fn read_text(stream: &mut TcpStream) -> (u32, String) {
    let (tag, payload) = read_frame(stream).expect("read frame").expect("a frame");
    (tag, String::from_utf8(payload).expect("utf-8 payload"))
}

#[test]
fn malformed_frames_get_error_frames_and_do_not_kill_the_daemon() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr();

    // An unknown payload header: error frame, connection stays usable.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    write_frame(&mut raw, 5, b"definitely not a request\n").expect("write");
    let (tag, text) = read_text(&mut raw);
    assert_eq!(tag, 5);
    let err = mutree::engine::ServeError::decode(&text).expect("error frame");
    assert_eq!(err.code, ServeErrorCode::Malformed);

    // A request frame whose body fails the request codec: same deal, on
    // the same still-alive connection.
    write_frame(&mut raw, 6, b"mutree-request v1\nmatrix inline bogus\n").expect("write");
    let (tag, text) = read_text(&mut raw);
    assert_eq!(tag, 6);
    let err = mutree::engine::ServeError::decode(&text).expect("error frame");
    assert_eq!(err.code, ServeErrorCode::Malformed);

    // A server-side path source is refused: the daemon does not read
    // local files on a client's say-so.
    let req = SolveRequest::new(mutree::engine::MatrixSource::PhylipPath(
        "/etc/hosts".into(),
    ));
    write_frame(&mut raw, 7, req.encode().as_bytes()).expect("write");
    let (tag, text) = read_text(&mut raw);
    assert_eq!(tag, 7);
    let err = mutree::engine::ServeError::decode(&text).expect("error frame");
    assert_eq!(err.code, ServeErrorCode::Malformed);

    // A truncated frame (header promises more than ever arrives): the
    // daemon names the problem before giving up on the stream.
    let mut truncated = TcpStream::connect(addr).expect("connect truncated");
    truncated.write_all(&100u32.to_be_bytes()).expect("len");
    truncated.write_all(&9u32.to_be_bytes()).expect("tag");
    truncated
        .write_all(b"only a little")
        .expect("partial payload");
    truncated
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let (tag, text) = read_text(&mut truncated);
    assert_eq!(tag, 9);
    let err = mutree::engine::ServeError::decode(&text).expect("error frame");
    assert_eq!(err.code, ServeErrorCode::Malformed);

    // An oversized length prefix: refused without allocation, answered,
    // connection closed (no resync is possible mid-payload).
    let mut oversized = TcpStream::connect(addr).expect("connect oversized");
    oversized.write_all(&u32::MAX.to_be_bytes()).expect("len");
    oversized.write_all(&77u32.to_be_bytes()).expect("tag");
    let (tag, text) = read_text(&mut oversized);
    assert_eq!(tag, 77);
    let err = mutree::engine::ServeError::decode(&text).expect("error frame");
    assert_eq!(err.code, ServeErrorCode::Malformed);

    // After all of that abuse the daemon still solves.
    let mut client = Client::connect(addr).expect("connect healthy client");
    let report = client
        .solve(&SolveRequest::exact(matrix(7, 0xab5e)))
        .expect("healthy solve after abuse");
    assert!(report.is_complete());
    client.drain().expect("drain");
    server.join();
}

#[test]
fn client_disconnect_mid_solve_cancels_the_request() {
    // The stall hook parks every solve in a cancellable wait, making the
    // mid-solve window deterministic without a huge matrix.
    let config = ServeConfig {
        stall: Some(Duration::from_secs(10)),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    {
        let mut doomed = TcpStream::connect(addr).expect("connect doomed client");
        let req = SolveRequest::exact(matrix(8, 0xd15c));
        write_frame(&mut doomed, 1, req.encode().as_bytes()).expect("send");
        // Give the daemon time to dispatch into the stall, then vanish.
        std::thread::sleep(Duration::from_millis(200));
    }
    // The drain must return promptly — a cancellation that did not take
    // would hold it for the full 10 s stall.
    let t0 = std::time::Instant::now();
    let summary = Client::connect(addr)
        .expect("connect drain client")
        .drain()
        .expect("drain");
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "drain waited out the stall: the disconnect did not cancel"
    );
    assert_eq!(summary.cancelled, 1);
    assert_eq!(summary.served, 0);
    server.join();
}

#[test]
fn eight_concurrent_clients_all_get_correct_answers() {
    let config = ServeConfig {
        workers: 4,
        threads: 4,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let env = EnvOverrides::capture();
    std::thread::scope(|scope| {
        for c in 0..8u64 {
            let env = env.clone();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for k in 0..3u64 {
                    let seed = 0xc0_0000 + c * 100 + k;
                    let req = SolveRequest::exact(matrix(7, seed)).cache(false);
                    let local =
                        solve_plan(&SolvePlan::resolve(req.clone(), &env)).expect("local solve");
                    let remote = client.solve(&req).expect("daemon solve");
                    assert_bit_identical(&remote, &local);
                }
            });
        }
    });
    let summary = Client::connect(addr)
        .expect("connect drain client")
        .drain()
        .expect("drain");
    assert_eq!(summary.served, 24);
    assert_eq!(
        summary.shed + summary.cancelled + summary.panicked + summary.errors,
        0
    );
    server.join();
}

#[test]
fn drain_finishes_in_flight_work_before_acknowledging() {
    let config = ServeConfig {
        stall: Some(Duration::from_millis(400)),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .solve(&SolveRequest::exact(matrix(8, 0xd4a1)))
            .expect("in-flight request must be answered despite the drain")
    });
    // Let the request reach its stall, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    let summary = Client::connect(addr)
        .expect("connect drain client")
        .drain()
        .expect("drain");
    assert_eq!(summary.served, 1, "the drain must wait for in-flight work");
    let report = worker.join().expect("client thread");
    assert!(report.is_complete());
    // Admission is closed for good: new connections are refused once the
    // acceptor has exited (give its poll loop a beat to notice).
    server.join();
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        TcpStream::connect(addr).is_err(),
        "daemon must stop listening after a drain"
    );
}

#[test]
fn requests_racing_a_drain_get_clean_draining_frames() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    Client::connect(addr)
        .expect("connect drain client")
        .drain()
        .expect("drain");
    // The already-open connection is still readable, but admission is
    // closed: the daemon says so instead of hanging or dropping the
    // frame. (It may instead have torn the connection down already —
    // both are clean outcomes; what is banned is an accepted solve.)
    match client.solve(&SolveRequest::exact(matrix(6, 0xdead))) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ServeErrorCode::Draining),
        Err(ClientError::Io(_)) => {}
        other => panic!("a draining daemon accepted a solve: {other:?}"),
    }
    server.join();
}

/// The response headers the daemon can legally emit, pinned here so a
/// codec rename cannot silently change the wire.
#[test]
fn response_headers_are_the_documented_constants() {
    assert_eq!(REPORT_HEADER, "mutree-report v1");
    assert_eq!(ERROR_HEADER, "mutree-error v1");
    assert_eq!(mutree::serve::DRAIN_HEADER, "mutree-drain v1");
}
