//! Determinism and fault isolation of the task-graph pipeline.
//!
//! The compact-set pipeline declares its stages as a task DAG and runs
//! them either inline or on a shared [`Executor`] worker pool. These
//! tests pin the two properties that make that safe:
//!
//! * **Determinism** — a 4-worker executor run produces the same weight,
//!   groups and (index-ordered) degradation records as the sequential
//!   run, under any scheduling;
//! * **Fault isolation** — a group solve that panics degrades only its
//!   own group, while sibling groups on the same pool complete exactly.

use mutree::bnb::StopReason;
use mutree::core::{CompactPipeline, DegradeReason, Executor, MutSolver, SearchBackend};
use mutree::distmat::{gen, DistanceMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Weight, groups and feasibility agree between the inline pipeline
    /// and the same pipeline fanned out over a 4-worker executor.
    #[test]
    fn executor_pipeline_matches_sequential(
        n in 10usize..=20,
        seed in any::<u64>(),
        threshold in 4usize..=7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::perturbed_ultrametric(n, 60.0, 0.05, &mut rng);
        let seq = CompactPipeline::new().threshold(threshold).solve(&m).unwrap();
        let par = CompactPipeline::new()
            .threshold(threshold)
            .executor(Executor::new(4))
            .solve(&m)
            .unwrap();
        prop_assert!(par.tree.is_feasible_for(&m, 1e-9));
        prop_assert!(
            (seq.weight - par.weight).abs() < 1e-9,
            "inline {} vs pooled {}", seq.weight, par.weight
        );
        prop_assert_eq!(&seq.groups, &par.groups);
        prop_assert_eq!(&seq.degraded, &par.degraded);
    }

    /// Degradation records stay deterministic when *every* stage degrades
    /// (zero budget, no initial incumbent): the executor run reports the
    /// identical stage-path-ordered set the inline run does.
    #[test]
    fn degraded_sets_agree_under_concurrency(
        n in 12usize..=20,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::perturbed_ultrametric(n, 60.0, 0.08, &mut rng);
        let starved = || MutSolver::new().without_upgmm().max_branches(0);
        let seq = CompactPipeline::new()
            .threshold(5)
            .solver(starved())
            .solve(&m)
            .unwrap();
        let par = CompactPipeline::new()
            .threshold(5)
            .solver(starved())
            .executor(Executor::new(4))
            .solve(&m)
            .unwrap();
        prop_assert!(par.tree.is_feasible_for(&m, 1e-9));
        prop_assert!((seq.weight - par.weight).abs() < 1e-9);
        prop_assert_eq!(&seq.degraded, &par.degraded);
        prop_assert_eq!(seq.stop, par.stop);
    }
}

/// Three tight clusters of sizes 3, 4 and 5: an ultrametric matrix whose
/// compact sets are exactly the clusters, so a threshold of 6 yields
/// three groups of known sizes.
fn three_cluster_matrix() -> DistanceMatrix {
    let sizes = [3usize, 4, 5];
    let cluster_of: Vec<usize> = sizes
        .iter()
        .enumerate()
        .flat_map(|(c, &s)| std::iter::repeat_n(c, s))
        .collect();
    let n = cluster_of.len();
    let mut rows = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            rows[i][j] = if cluster_of[i] == cluster_of[j] {
                2.0 + cluster_of[i] as f64
            } else {
                100.0
            };
        }
    }
    DistanceMatrix::from_rows(&rows).unwrap()
}

/// One poisoned group solve (injected panic on every 4-taxon matrix)
/// degrades only its own group; the sibling groups running on the same
/// worker pool still solve exactly, and the merged tree stays feasible.
#[test]
fn panicking_group_degrades_alone_on_shared_pool() {
    let m = three_cluster_matrix();
    let solver = MutSolver::new()
        .backend(SearchBackend::Parallel { workers: 2 })
        .panic_on_taxa(4);
    let pipe = CompactPipeline::new()
        .threshold(6)
        .executor(Executor::new(4))
        .solver(solver)
        .solve(&m)
        .unwrap();

    assert_eq!(pipe.groups.len(), 3);
    let poisoned: Vec<usize> = pipe
        .groups
        .iter()
        .enumerate()
        .filter(|(_, g)| g.len() == 4)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(poisoned.len(), 1);

    assert_eq!(pipe.degraded.len(), 1, "{:?}", pipe.degraded);
    let d = &pipe.degraded[0];
    assert_eq!(d.group, Some(poisoned[0]));
    assert_eq!(d.reason, DegradeReason::Panicked);
    assert_eq!(d.stage, format!("group {}", poisoned[0]));
    assert_eq!(pipe.stop, StopReason::WorkerPanicked);

    // The merged tree is whole and feasible: the poisoned group got the
    // agglomerative stand-in, the siblings' subtrees are exact.
    assert_eq!(pipe.tree.leaf_count(), m.len());
    assert!(pipe.tree.is_feasible_for(&m, 1e-9));
}

/// The same injected fault without an executor (inline DAG) behaves
/// identically — the degradation ladder is executor-independent.
#[test]
fn panicking_group_degrades_alone_inline() {
    let m = three_cluster_matrix();
    let pipe = CompactPipeline::new()
        .threshold(6)
        .solver(MutSolver::new().panic_on_taxa(4))
        .solve(&m)
        .unwrap();
    assert_eq!(pipe.degraded.len(), 1);
    assert_eq!(pipe.degraded[0].reason, DegradeReason::Panicked);
    assert!(pipe.tree.is_feasible_for(&m, 1e-9));
}
