//! Three-driver agreement over the sharded work-stealing frontier: the
//! sequential search, the thread-parallel drivers (scoped and pooled,
//! both running the sharded frontier) and the simulated cluster must all
//! find the same optimum on the same matrices, at every worker count.
//!
//! Worker counts default to {1, 2, 8}; when `MUTREE_PIPELINE_THREADS` is
//! set (the CI stress pass pins it to 8 with `RUST_TEST_THREADS=1`), the
//! suite uses that count instead, so the stress run drives exactly the
//! configuration under test.
//!
//! The whole matrix additionally runs at both monomorphized leaf-bitset
//! widths (K = 1 and forced K = 2): the sharded frontier must find the
//! same optimum regardless of how wide the per-node leaf masks are.

use mutree::clustersim::ClusterSpec;
use mutree::core::{CompactPipeline, Executor, MutSolver, SearchBackend, SearchMode};
use mutree::distmat::DistanceMatrix;
use mutree::seqgen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn worker_counts() -> Vec<usize> {
    match std::env::var_os("MUTREE_PIPELINE_THREADS") {
        Some(v) => vec![v
            .to_string_lossy()
            .trim()
            .parse()
            .expect("MUTREE_PIPELINE_THREADS is numeric")],
        None => vec![1, 2, 8],
    }
}

fn matrices() -> Vec<DistanceMatrix> {
    let mut out = Vec::new();
    for seed in [11u64, 12, 13] {
        let mut rng = StdRng::seed_from_u64(seed);
        out.push(seqgen::hmdna_like_matrix(11, 150, &mut rng));
    }
    out
}

#[test]
fn sequential_parallel_and_cluster_sim_agree() {
    for (mi, m) in matrices().iter().enumerate() {
        let seq = MutSolver::new()
            .backend(SearchBackend::Sequential)
            .solve(m)
            .unwrap();
        assert!(seq.is_complete());
        for words in [1usize, 2] {
            let wseq = MutSolver::new()
                .leaf_words(words)
                .backend(SearchBackend::Sequential)
                .solve(m)
                .unwrap();
            // The widths run the same search: same weight, same counters.
            assert_eq!(wseq.stats.branched, seq.stats.branched, "matrix {mi}");
            assert!((wseq.weight - seq.weight).abs() < 1e-9, "matrix {mi}");
            for workers in worker_counts() {
                let ctx = format!("matrix {mi}, workers {workers}, width {words}");
                let par = MutSolver::new()
                    .leaf_words(words)
                    .backend(SearchBackend::Parallel { workers })
                    .solve(m)
                    .unwrap();
                assert!(par.is_complete(), "{ctx}");
                assert!(
                    (par.weight - seq.weight).abs() < 1e-9,
                    "scoped parallel disagrees: {ctx}: {} vs {}",
                    par.weight,
                    seq.weight
                );

                let pooled = MutSolver::new()
                    .leaf_words(words)
                    .backend(SearchBackend::Parallel { workers })
                    .executor(Executor::new(workers))
                    .solve(m)
                    .unwrap();
                assert!(pooled.is_complete(), "{ctx}");
                assert!(
                    (pooled.weight - seq.weight).abs() < 1e-9,
                    "pooled parallel disagrees: {ctx}: {} vs {}",
                    pooled.weight,
                    seq.weight
                );

                let sim = MutSolver::new()
                    .leaf_words(words)
                    .backend(SearchBackend::SimulatedCluster {
                        spec: ClusterSpec::with_slaves(workers),
                    })
                    .solve(m)
                    .unwrap();
                assert!(sim.is_complete(), "{ctx}");
                assert!(
                    (sim.weight - seq.weight).abs() < 1e-9,
                    "cluster sim disagrees: {ctx}: {} vs {}",
                    sim.weight,
                    seq.weight
                );
            }
        }
    }
}

#[test]
fn all_optimal_sets_agree_across_drivers() {
    // Equidistant taxa give genuine co-optima; every driver must
    // enumerate the same number of optimal topologies.
    let m = DistanceMatrix::from_rows(&[
        vec![0.0, 6.0, 6.0, 6.0],
        vec![6.0, 0.0, 6.0, 6.0],
        vec![6.0, 6.0, 0.0, 6.0],
        vec![6.0, 6.0, 6.0, 0.0],
    ])
    .unwrap();
    let seq = MutSolver::new()
        .mode(SearchMode::AllOptimal)
        .solve(&m)
        .unwrap();
    for words in [1usize, 2] {
        for workers in worker_counts() {
            let par = MutSolver::new()
                .leaf_words(words)
                .mode(SearchMode::AllOptimal)
                .backend(SearchBackend::Parallel { workers })
                .solve(&m)
                .unwrap();
            assert!((par.weight - seq.weight).abs() < 1e-9);
            assert_eq!(
                par.trees.len(),
                seq.trees.len(),
                "co-optimum count differs at {workers} workers, width {words}"
            );
        }
    }
}

#[test]
fn pipeline_honors_thread_env_and_agrees() {
    // The compact-set pipeline routes its group solves through the
    // pooled driver whenever an executor is attached — including the
    // process-wide one forced by MUTREE_PIPELINE_THREADS. Its exact
    // pieces must reproduce the sequential optimum of each piece's
    // submatrix regardless of thread count.
    let mut rng = StdRng::seed_from_u64(99);
    let m = seqgen::hmdna_like_matrix(14, 150, &mut rng);
    let base = CompactPipeline::new().threshold(8).solve(&m).unwrap();
    let pooled = CompactPipeline::new()
        .threshold(8)
        .executor(Executor::new(worker_counts()[0]))
        .solve(&m)
        .unwrap();
    assert!(base.tree.is_feasible_for(&m, 1e-9));
    assert!(pooled.tree.is_feasible_for(&m, 1e-9));
    assert!((base.tree.weight() - pooled.tree.weight()).abs() < 1e-9);
}
