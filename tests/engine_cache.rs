//! Property tests of the engine spine's group-solve cache contract:
//!
//! * an **exact hit** replays the filing solve bit for bit — same
//!   optimum bits, same topology (RF = 0), provenance `Cached` — on all
//!   three search drivers;
//! * a **warm seed** (ε-close matrix in the same quantization bucket)
//!   never makes the search worse: the seeded solve still completes and
//!   still proves the same optimum;
//! * a **poisoned** entry fails its checksum, is evicted, and the solve
//!   degrades to a cold search with the corruption counted — never a
//!   wrong answer.

use std::sync::Arc;

use mutree::core::{
    solve_plan, BackendSpec, CacheOutcome, CompactPipeline, EnvOverrides, GroupCache, MutSolver,
    PruneStrategy, SolvePlan, SolveRequest, StageProvenance,
};
use mutree::distmat::gen;
use mutree::tree::compare::robinson_foulds;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BACKENDS: [BackendSpec; 3] = [
    BackendSpec::Sequential,
    BackendSpec::Parallel { workers: 3 },
    BackendSpec::SimulatedCluster { slaves: 3 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Solving the same cache-enabled plan twice answers the second run
    /// from the cache, bit-identical to the run that filed the entry, on
    /// every driver (the solver signature includes the backend, so each
    /// driver files and hits its own entries).
    #[test]
    fn cache_hits_replay_bit_identically_on_every_driver(
        n in 6usize..10,
        seed in any::<u64>(),
        which in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::perturbed_ultrametric(n, 60.0, 0.05, &mut rng);
        let backend = BACKENDS[which];
        let plan = SolvePlan::resolve(
            SolveRequest::exact(m.clone()).backend(backend).cache(true),
            &EnvOverrides::none(),
        );
        let reference = solve_plan(&SolvePlan::resolve(
            SolveRequest::exact(m.clone()).backend(backend).cache(false),
            &EnvOverrides::none(),
        ))
        .unwrap();
        let filing = solve_plan(&plan).unwrap();
        let warm = solve_plan(&plan).unwrap();
        prop_assert_eq!(warm.stats.cache_hits, 1, "second run must hit");
        prop_assert_eq!(warm.timings[0].provenance, StageProvenance::Cached);
        prop_assert!(warm.is_complete());
        // Bit-identical to the solve that filed the entry…
        prop_assert_eq!(warm.weight.to_bits(), filing.weight.to_bits());
        prop_assert_eq!(robinson_foulds(&warm.tree, &filing.tree).unwrap(), 0);
        // …and the stored optimum is the true one.
        prop_assert!((warm.weight - reference.weight).abs() < 1e-9);
    }

    /// Seeding the incumbent from an ε-close cached solve can speed the
    /// search up but never change its answer: the seeded solve still
    /// completes and proves the same optimum as a cold solve.
    #[test]
    fn warm_seed_never_worsens_the_optimum(n in 5usize..9, seed in any::<u64>()) {
        let quantum = 1e-3;
        let cache = GroupCache::with_quantum(quantum);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = gen::perturbed_ultrametric(n, 60.0, 0.05, &mut rng);
        // Snap every distance to its bin center so the perturbation
        // below cannot cross a quantization boundary.
        let snapped: Vec<(usize, usize, f64)> = m
            .pairs()
            .map(|(i, j, d)| (i, j, (d / quantum).floor() * quantum + 0.5 * quantum))
            .collect();
        for (i, j, d) in snapped {
            m.set(i, j, d);
        }
        let solver = MutSolver::new();
        let sig = solver.cache_sig().expect("unconstrained solver is cacheable");
        let cold = solver.solve(&m).unwrap();
        let query = match cache.probe(&m, sig).outcome {
            CacheOutcome::Miss(q) => q,
            _ => {
                prop_assert!(false, "fresh cache must miss");
                unreachable!()
            }
        };
        cache.insert(query, &cold.tree, cold.weight);

        let mut near = m.clone();
        near.set(0, 1, m.get(0, 1) + quantum / 4.0);
        let near_cold = solver.solve(&near).unwrap();
        let seed_tree = match cache.probe(&near, sig).outcome {
            CacheOutcome::Seed { tree, .. } => tree,
            _ => {
                prop_assert!(false, "ε-perturbed matrix must warm-seed");
                unreachable!()
            }
        };
        let seeded = solver.clone().seed_incumbent(seed_tree).solve(&near).unwrap();
        prop_assert!(seeded.is_complete(), "seeded search must still prove optimality");
        prop_assert!(
            seeded.weight <= near_cold.weight + 1e-9,
            "seeded {} vs cold {}",
            seeded.weight,
            near_cold.weight
        );
        prop_assert!((seeded.weight - near_cold.weight).abs() < 1e-9);
        prop_assert!(seeded.tree.is_feasible_for(&near, 1e-9));
    }
}

/// Solvers that differ only in prune strategy must never share a cache
/// entry: cached reports replay the filing solve's search statistics
/// (branched/pruned counts), which differ per strategy even though the
/// optima are bit-identical. The signature therefore hashes the
/// *dispatched* strategy — so an environment-forced strategy separates
/// entries exactly like a builder-forced one.
#[test]
fn cache_sig_separates_prune_strategies() {
    let strategies = [
        PruneStrategy::WeightOnly,
        PruneStrategy::Propagate,
        PruneStrategy::Hybrid,
    ];
    let sigs: Vec<u64> = strategies
        .iter()
        .map(|&p| {
            MutSolver::new()
                .prune(p)
                .cache_sig()
                .expect("unconstrained solver is cacheable")
        })
        .collect();
    for (i, a) in sigs.iter().enumerate() {
        for (j, b) in sigs.iter().enumerate() {
            if i != j {
                assert_ne!(
                    a, b,
                    "{:?} and {:?} share a signature",
                    strategies[i], strategies[j]
                );
            }
        }
    }
    // An unforced solver files under whatever it would dispatch to
    // (Propagate, unless MUTREE_FORCE_PRUNE redirects the whole
    // process).
    let dispatched = MutSolver::new().dispatch_prune();
    assert_eq!(
        MutSolver::new().cache_sig(),
        MutSolver::new().prune(dispatched).cache_sig()
    );
    // The bound kernel stays deliberately unhashed: both kernels run
    // bit-identical searches with identical statistics, so sharing
    // entries across them is sound (and keeps the cache warm when a
    // bench toggles kernels).
    assert_eq!(
        MutSolver::new()
            .bound_kernel(mutree::core::BoundKernel::Scalar)
            .cache_sig(),
        MutSolver::new()
            .bound_kernel(mutree::core::BoundKernel::Lanes)
            .cache_sig()
    );
}

/// A corrupted cache entry fails its checksum on probe: it is evicted,
/// counted in `cache_poisoned`, and the solve degrades to a cold search
/// that reproduces the original optimum exactly.
#[test]
fn poisoned_cache_degrades_to_cold_solve() {
    let cache = Arc::new(GroupCache::new());
    let mut rng = StdRng::seed_from_u64(1234);
    let m = gen::perturbed_ultrametric(12, 60.0, 0.05, &mut rng);
    let pipeline = || {
        CompactPipeline::new()
            .threshold(6)
            .cache(Arc::clone(&cache))
    };
    let cold = pipeline().solve(&m).unwrap();
    assert!(!cache.is_empty(), "cold run must file its solves");
    cache.poison_all();
    let replay = pipeline().solve(&m).unwrap();
    assert!(
        replay.stats.cache_poisoned > 0,
        "checksum mismatches must be counted: {:?}",
        replay.stats
    );
    assert!(
        replay.is_complete(),
        "a poisoned cache costs time, never completeness"
    );
    assert_eq!(
        replay.weight.to_bits(),
        cold.weight.to_bits(),
        "the re-solve must reproduce the optimum"
    );
    assert_eq!(robinson_foulds(&replay.tree, &cold.tree).unwrap(), 0);
    assert!(
        replay
            .timings
            .iter()
            .all(|t| t.provenance != StageProvenance::Cached),
        "no stage may be served from a poisoned cache: {:?}",
        replay.timings
    );
}
