//! Supervised-runtime end-to-end tests: crash-safe checkpoint/resume
//! across all three search drivers, the open-node memory watchdog, and
//! deterministic retry provenance — the robustness layer exercised as a
//! whole, from the engine up through the solver and pipeline front ends.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use mutree::bnb::checkpoint;
use mutree::bnb::fault::{FaultSpec, FaultyProblem};
use mutree::bnb::{
    solve_parallel, CheckpointPolicy, ChildBuf, MemoryBudget, Problem, SearchMode, SearchOptions,
    StopReason,
};
use mutree::clustersim::ClusterSpec;
use mutree::core::{CompactPipeline, MutSolver, RetryPolicy, SearchBackend};
use mutree::distmat::{gen, DistanceMatrix};
use mutree::tree::compare::robinson_foulds;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matrix(seed: u64) -> DistanceMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::perturbed_ultrametric(12, 60.0, 0.08, &mut rng)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mutree-sup-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn backends() -> [(&'static str, SearchBackend); 3] {
    [
        ("sequential", SearchBackend::Sequential),
        ("parallel", SearchBackend::Parallel { workers: 4 }),
        (
            "simulated",
            SearchBackend::SimulatedCluster {
                spec: ClusterSpec::with_slaves(4),
            },
        ),
    ]
}

/// The headline crash-safety property: a run killed mid-search leaves a
/// durable snapshot, and resuming from it reaches the *bit-identical*
/// optimum (weight and RF-0 topology) of an uninterrupted run — on every
/// driver.
#[test]
fn interrupted_solve_resumes_to_the_bit_identical_optimum() {
    let m = matrix(5);
    let dir = tmpdir("resume");
    for (name, backend) in backends() {
        let clean = MutSolver::new().backend(backend.clone()).solve(&m).unwrap();
        assert!(clean.is_complete(), "{name}: clean run must complete");

        // "Kill" the first run early: a tiny branch budget interrupts the
        // search mid-way, and the snapshot keeps its best incumbent.
        let ckpt = dir.join(format!("{name}.ckpt"));
        let interrupted = MutSolver::new()
            .backend(backend.clone())
            .max_branches(2)
            .checkpoint_to(&ckpt)
            .solve(&m)
            .unwrap();
        assert!(
            !interrupted.is_complete(),
            "{name}: 2 branches cannot finish 12 taxa"
        );
        assert!(
            interrupted.stats.checkpoints >= 1,
            "{name}: the interrupted run must leave a snapshot"
        );
        assert!(ckpt.exists(), "{name}: snapshot file missing");

        let resumed = MutSolver::new()
            .backend(backend.clone())
            .resume_from(&ckpt)
            .solve(&m)
            .unwrap();
        assert!(resumed.is_complete(), "{name}: resumed run must complete");
        assert_eq!(
            clean.weight.to_bits(),
            resumed.weight.to_bits(),
            "{name}: resume must reach the bit-identical optimum ({} vs {})",
            clean.weight,
            resumed.weight
        );
        assert_eq!(
            robinson_foulds(&clean.tree, &resumed.tree).unwrap(),
            0,
            "{name}: resumed topology differs"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming from a checkpoint of a *different* (relabeled) run is still
/// safe: the snapshot payload is stored in original taxon indexing, so
/// the warm start survives the maxmin permutation changing between runs.
#[test]
fn resume_survives_solver_configuration_changes() {
    let m = matrix(6);
    let dir = tmpdir("reconf");
    let ckpt = dir.join("solve.ckpt");
    // Checkpoint under the parallel driver, resume sequentially with the
    // 3-3 rule on: the incumbent must still decode and warm-start.
    MutSolver::new()
        .backend(SearchBackend::Parallel { workers: 4 })
        .max_branches(4)
        .checkpoint_to(&ckpt)
        .solve(&m)
        .unwrap();
    let resumed = MutSolver::new()
        .backend(SearchBackend::Sequential)
        .three_three(mutree::core::ThreeThree::InitialOnly)
        .resume_from(&ckpt)
        .solve(&m)
        .unwrap();
    let clean = MutSolver::new().solve(&m).unwrap();
    assert!(resumed.is_complete());
    assert_eq!(clean.weight.to_bits(), resumed.weight.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}

/// The sequential watchdog invariant, measured rather than assumed: the
/// frontier never grows past the cap by more than one branching batch
/// (`peak_pool` is sampled right after each absorb, *before* the shed),
/// the search terminates with `MemoryExhausted`, and the best incumbent
/// survives.
#[test]
fn watchdog_caps_the_sequential_frontier_within_one_batch() {
    let m = matrix(7);
    let cap = 4u64;
    let sol = MutSolver::new()
        .backend(SearchBackend::Sequential)
        .memory_budget(MemoryBudget::new(cap))
        .solve(&m)
        .unwrap();
    assert_eq!(sol.stop, StopReason::MemoryExhausted);
    assert!(sol.stats.nodes_shed > 0, "the cap must actually bind");
    // One branching batch for a 12-taxon MUT search is at most 2n-3
    // insertion positions.
    let batch = 2 * m.len() as u64;
    assert!(
        sol.stats.peak_pool <= cap + batch,
        "frontier peaked at {} (cap {cap} + batch {batch})",
        sol.stats.peak_pool
    );
    // The shed search still returns its best incumbent — never worse
    // than the UPGMM warm start it began from.
    let mut upgmm = mutree::tree::cluster(&m, mutree::tree::Linkage::Maximum);
    let upgmm_w = upgmm.fit_heights(&m);
    assert!(sol.weight <= upgmm_w + 1e-9);
    assert!(sol.tree.is_feasible_for(&m, 1e-9));
}

/// The parallel watchdog: same contract, sharded frontier.
#[test]
fn watchdog_sheds_the_parallel_frontier_and_keeps_the_incumbent() {
    let m = matrix(8);
    let sol = MutSolver::new()
        .backend(SearchBackend::Parallel { workers: 4 })
        .memory_budget(MemoryBudget::new(2))
        .solve(&m)
        .unwrap();
    assert_eq!(sol.stop, StopReason::MemoryExhausted);
    assert!(sol.stats.nodes_shed > 0);
    assert!(sol.weight.is_finite());
    assert!(sol.tree.is_feasible_for(&m, 1e-9));
}

/// A generous budget never trips: the solve completes exactly as without
/// a watchdog, at the identical optimum.
#[test]
fn unbound_watchdog_is_invisible() {
    let m = matrix(9);
    let capped = MutSolver::new()
        .memory_budget(MemoryBudget::new(u64::MAX))
        .solve(&m)
        .unwrap();
    let clean = MutSolver::new().solve(&m).unwrap();
    assert!(capped.is_complete());
    assert_eq!(capped.stats.nodes_shed, 0);
    assert_eq!(capped.weight.to_bits(), clean.weight.to_bits());
}

/// Retry provenance at the pipeline level: a stage that panics twice and
/// then succeeds reports its attempts but is *not* degraded, and the
/// final tree matches the fault-free run exactly.
#[test]
fn killed_stages_retried_to_success_match_the_clean_run() {
    let m = matrix(10);
    let clean = CompactPipeline::new().threshold(6).solve(&m).unwrap();
    // Find a group size that actually gets an exact solve, so the fueled
    // panic is guaranteed to fire.
    let target = clean
        .groups
        .iter()
        .map(Vec::len)
        .find(|&l| l >= 3)
        .unwrap_or(clean.groups.len());
    let pipe = CompactPipeline::new()
        .threshold(6)
        .solver(MutSolver::new().panic_on_taxa_times(target, 2))
        .retry(
            RetryPolicy::new()
                .max_attempts(3)
                .base_backoff(Duration::from_micros(200)),
        )
        .solve(&m)
        .unwrap();
    assert!(pipe.is_complete(), "degraded: {:?}", pipe.degraded);
    assert!(pipe.stats.retries >= 2, "the panics must have been retried");
    assert_eq!(clean.weight.to_bits(), pipe.weight.to_bits());
    assert_eq!(robinson_foulds(&clean.tree, &pipe.tree).unwrap(), 0);
}

/// Fixed fault seed ⇒ identical result and provenance on repeated runs:
/// the deterministic-supervision property from the issue, at the full
/// pipeline level.
#[test]
fn supervised_runs_are_reproducible() {
    let m = matrix(11);
    let run = || {
        CompactPipeline::new()
            .threshold(6)
            .solver(
                MutSolver::new()
                    .panic_on_taxa(usize::MAX) // never fires: clean but armed
                    .memory_budget(MemoryBudget::new(64)),
            )
            .retry(RetryPolicy::new().seed(7))
            .solve(&m)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.weight.to_bits(), b.weight.to_bits());
    assert_eq!(a.degraded, b.degraded);
    assert_eq!(a.stats.retries, b.stats.retries);
    assert_eq!(a.stats.nodes_shed, b.stats.nodes_shed);
}

// --- Engine-level kill/checkpoint/resume property --------------------

/// Minimize weighted ones over binary strings (optimum all-false = 0),
/// with an all-true initial incumbent and a byte codec for snapshots.
#[derive(Clone)]
struct WeightedBits {
    weights: Vec<f64>,
    resume: Option<(Vec<bool>, f64)>,
}

impl WeightedBits {
    fn new(n: usize) -> Self {
        WeightedBits {
            weights: (0..n).map(|i| 1.0 + (i % 3) as f64).collect(),
            resume: None,
        }
    }
}

impl Problem for WeightedBits {
    type Node = Vec<bool>;
    type Solution = Vec<bool>;

    fn root(&self) -> Vec<bool> {
        Vec::new()
    }
    fn lower_bound(&self, node: &Vec<bool>) -> f64 {
        node.iter()
            .zip(&self.weights)
            .map(|(&b, &w)| if b { w } else { 0.0 })
            .sum()
    }
    fn solution(&self, node: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
        (node.len() == self.weights.len()).then(|| (node.clone(), self.lower_bound(node)))
    }
    fn branch(&self, node: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
        for b in [true, false] {
            let mut c = node.clone();
            c.push(b);
            out.push(c);
        }
    }
    fn initial_incumbent(&self) -> Option<(Vec<bool>, f64)> {
        let hint = (vec![true; self.weights.len()], self.weights.iter().sum());
        match &self.resume {
            Some((bits, v)) if *v < hint.1 => Some((bits.clone(), *v)),
            _ => Some(hint),
        }
    }
    fn encode_solution(&self, solution: &Vec<bool>) -> Option<Vec<u8>> {
        Some(solution.iter().map(|&b| b as u8).collect())
    }
}

/// Kill a worker mid-search while snapshotting every branch; the last
/// durable snapshot must decode to a feasible incumbent, and warm-starting
/// a fresh search from it reaches the clean-run optimum.
#[test]
fn killed_search_leaves_a_resumable_snapshot() {
    let dir = tmpdir("kill");
    let ckpt = dir.join("bits.ckpt");
    let killed = FaultyProblem::new(WeightedBits::new(14), FaultSpec::new(3).kill_after(40));
    let opts = SearchOptions::new(SearchMode::BestOne)
        .checkpoint(CheckpointPolicy::new(&ckpt).interval(1));
    let start = Instant::now();
    let out = solve_parallel(&killed, &opts, 4);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "kill hung the pool"
    );
    assert_eq!(out.stop, StopReason::WorkerPanicked);
    assert!(out.stats.checkpoints > 0, "snapshots must precede the kill");

    let file = checkpoint::read(&ckpt).expect("snapshot must be readable");
    let bits: Vec<bool> = file.payload.iter().map(|&b| b != 0).collect();
    assert_eq!(bits.len(), 14, "payload decodes to a full assignment");
    let mut resumed = WeightedBits::new(14);
    let value = resumed.lower_bound(&bits);
    assert!(
        (value - file.best_value).abs() < 1e-9,
        "snapshot value must match its payload"
    );
    resumed.resume = Some((bits, value));
    let clean = solve_parallel(
        &WeightedBits::new(14),
        &SearchOptions::new(SearchMode::BestOne),
        4,
    );
    let warm = solve_parallel(&resumed, &SearchOptions::new(SearchMode::BestOne), 4);
    assert!(warm.is_complete());
    assert_eq!(warm.best_value, clean.best_value);
    assert_eq!(warm.best_value, Some(0.0));
    std::fs::remove_dir_all(&dir).ok();
}
