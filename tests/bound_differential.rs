//! Differential agreement between the two bound-arithmetic kernels: the
//! historical scalar packed-triangle path and the lane-oriented path over
//! the blocked solver matrix must run *the same search* — identical
//! optimum weight to the bit, identical topology, identical
//! `SearchStats.branched`/`pruned` wherever expansion order is
//! deterministic, and identical precomputed bound tables.
//!
//! The contract holds at every monomorphized leaf width (the lane kernels
//! consume `LeafWords<K>` mask words directly, so width and kernel
//! compose), and on all three drivers. Kernels are forced two ways: the
//! `MutSolver::bound_kernel` builder (race-free, used for the sweeps) and
//! the `MUTREE_FORCE_BOUND_KERNEL` env hook CI pins for its full-suite
//! passes (exercised once here, serialized within this file).

use mutree::clustersim::ClusterSpec;
use mutree::core::{BoundKernel, MutProblem, MutSolver, SearchBackend, ThreeThree};
use mutree::distmat::{gen, DistanceMatrix};
use mutree::seqgen;
use mutree::tree::compare::robinson_foulds;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small sweep of matrix families: random metric, near-ultrametric,
/// sequence-derived, and the full-word 64-taxon boundary.
fn matrices() -> Vec<DistanceMatrix> {
    let mut out = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut rng = StdRng::seed_from_u64(seed);
        out.push(gen::uniform_metric(7 + seed as usize, 1.0, 100.0, &mut rng));
    }
    for seed in [21u64, 22] {
        let mut rng = StdRng::seed_from_u64(seed);
        out.push(gen::perturbed_ultrametric(9, 50.0, 0.1, &mut rng));
    }
    let mut rng = StdRng::seed_from_u64(31);
    out.push(seqgen::hmdna_like_matrix(10, 120, &mut rng));
    let mut rng = StdRng::seed_from_u64(64);
    out.push(gen::random_ultrametric(64, 100.0, &mut rng));
    out
}

/// Bit-for-bit sequential agreement, at both leaf widths that fit these
/// matrices: widening the bitset or swapping the kernel may not change a
/// single search decision.
#[test]
fn forced_kernels_agree_bit_for_bit_sequentially() {
    for (mi, m) in matrices().iter().enumerate() {
        for words in [1usize, 2] {
            let scalar = MutSolver::new()
                .leaf_words(words)
                .bound_kernel(BoundKernel::Scalar)
                .solve(m)
                .unwrap();
            let lanes = MutSolver::new()
                .leaf_words(words)
                .bound_kernel(BoundKernel::Lanes)
                .solve(m)
                .unwrap();
            assert!(
                scalar.is_complete() && lanes.is_complete(),
                "matrix {mi}, K = {words}"
            );
            assert_eq!(
                scalar.weight.to_bits(),
                lanes.weight.to_bits(),
                "matrix {mi}, K = {words}: weight differs"
            );
            assert_eq!(
                scalar.stats.branched, lanes.stats.branched,
                "matrix {mi}, K = {words}: branch counts differ"
            );
            assert_eq!(
                scalar.stats.pruned, lanes.stats.pruned,
                "matrix {mi}, K = {words}: prune counts differ"
            );
            assert_eq!(
                robinson_foulds(&scalar.tree, &lanes.tree).unwrap(),
                0,
                "matrix {mi}, K = {words}: topologies differ"
            );
        }
    }
}

/// The same agreement across the thread-parallel and simulated-cluster
/// drivers (parallel branch counts are scheduling-dependent, so there the
/// contract is optimum + completeness; the deterministic sim keeps the
/// full bit-for-bit contract).
#[test]
fn forced_kernels_agree_on_all_drivers() {
    let mut rng = StdRng::seed_from_u64(77);
    let m = seqgen::hmdna_like_matrix(11, 150, &mut rng);
    let reference = MutSolver::new()
        .bound_kernel(BoundKernel::Scalar)
        .solve(&m)
        .unwrap();
    for kernel in [BoundKernel::Scalar, BoundKernel::Lanes] {
        let par = MutSolver::new()
            .bound_kernel(kernel)
            .backend(SearchBackend::Parallel { workers: 4 })
            .solve(&m)
            .unwrap();
        assert!(par.is_complete(), "parallel, {kernel}");
        assert!((par.weight - reference.weight).abs() < 1e-9);
    }
    let sim = |kernel| {
        MutSolver::new()
            .bound_kernel(kernel)
            .backend(SearchBackend::SimulatedCluster {
                spec: ClusterSpec::with_slaves(4),
            })
            .solve(&m)
            .unwrap()
    };
    let sim_scalar = sim(BoundKernel::Scalar);
    let sim_lanes = sim(BoundKernel::Lanes);
    assert!(sim_scalar.is_complete() && sim_lanes.is_complete());
    assert_eq!(sim_scalar.weight.to_bits(), sim_lanes.weight.to_bits());
    assert_eq!(sim_scalar.stats.branched, sim_lanes.stats.branched);
    assert_eq!(sim_scalar.stats.pruned, sim_lanes.stats.pruned);
    assert_eq!(
        robinson_foulds(&sim_scalar.tree, &sim_lanes.tree).unwrap(),
        0
    );
}

/// The precomputed bound tables — pendant-edge suffix sums and the 3-3
/// close-pair codes — must come out identical whichever kernel built
/// them: same suffix bits (the lane path reuses the reference summation
/// order), same close-pair byte per triple.
#[test]
fn bound_tables_are_kernel_independent() {
    for (mi, m) in matrices().iter().enumerate() {
        let scalar = MutProblem::<2>::with_kernel(m, ThreeThree::Full, false, BoundKernel::Scalar);
        let lanes = MutProblem::<2>::with_kernel(m, ThreeThree::Full, false, BoundKernel::Lanes);
        let (suffix_s, close_s) = scalar.bound_tables();
        let (suffix_l, close_l) = lanes.bound_tables();
        assert_eq!(suffix_s.len(), suffix_l.len(), "matrix {mi}");
        for (t, (a, b)) in suffix_s.iter().zip(suffix_l).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "matrix {mi}: suffix[{t}] differs: {a} vs {b}"
            );
        }
        assert_eq!(close_s, close_l, "matrix {mi}: close-pair tables differ");
    }
}

/// The env hook forces the kernel process-wide; the builder overrides it
/// when both are set, and junk values mean no override. Env mutation is
/// confined to this one test (integration-test files run as their own
/// process, and the other tests in this file use the builder, which wins
/// over the env var — so even concurrent execution within the file stays
/// correct).
#[test]
fn env_hook_forces_kernel() {
    let mut rng = StdRng::seed_from_u64(5);
    let m = gen::uniform_metric(8, 1.0, 100.0, &mut rng);
    let solver = MutSolver::new();
    // CI's forced passes pin the variable for the whole process; save and
    // restore it so this test is valid in any ambient configuration.
    let prior = std::env::var_os("MUTREE_FORCE_BOUND_KERNEL");
    std::env::remove_var("MUTREE_FORCE_BOUND_KERNEL");
    assert_eq!(solver.dispatch_bound_kernel(), BoundKernel::Lanes);

    std::env::set_var("MUTREE_FORCE_BOUND_KERNEL", "scalar");
    assert_eq!(solver.dispatch_bound_kernel(), BoundKernel::Scalar);
    let forced = solver.solve(&m).unwrap();
    // Builder beats env.
    assert_eq!(
        solver
            .clone()
            .bound_kernel(BoundKernel::Lanes)
            .dispatch_bound_kernel(),
        BoundKernel::Lanes
    );
    std::env::set_var("MUTREE_FORCE_BOUND_KERNEL", "lanes");
    assert_eq!(solver.dispatch_bound_kernel(), BoundKernel::Lanes);
    // Junk values mean no override.
    std::env::set_var("MUTREE_FORCE_BOUND_KERNEL", "avx-512");
    assert_eq!(solver.dispatch_bound_kernel(), BoundKernel::Lanes);
    match prior {
        Some(v) => std::env::set_var("MUTREE_FORCE_BOUND_KERNEL", v),
        None => std::env::remove_var("MUTREE_FORCE_BOUND_KERNEL"),
    }

    let baseline = MutSolver::new()
        .bound_kernel(BoundKernel::Lanes)
        .solve(&m)
        .unwrap();
    assert_eq!(forced.weight.to_bits(), baseline.weight.to_bits());
    assert_eq!(forced.stats.branched, baseline.stats.branched);
    assert_eq!(robinson_foulds(&forced.tree, &baseline.tree).unwrap(), 0);
}
