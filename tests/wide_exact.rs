//! End-to-end coverage of the lifted exact-search ceiling: matrices in
//! the 64 < n ≤ 256 range solve as *single* exact searches — under time
//! and branch budgets like any other anytime solve — instead of being
//! rejected (`TooManyTaxa`) or force-decomposed by the pipeline
//! (`NotDecomposable { max: 64 }`) as before the const-generic leaf
//! bitsets.

use mutree::core::{
    CompactPipeline, MutError, MutSolver, SearchBackend, StopReason, MAX_EXACT_TAXA,
};
use mutree::distmat::{gen, DistanceMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An 80-taxon clustered (ultrametric) matrix solves exactly — proven
/// optimal, all 80 leaves, exact distance reproduction — on both the
/// sequential and pooled-parallel drivers.
#[test]
fn eighty_taxa_solves_exactly_without_decomposition() {
    let mut rng = StdRng::seed_from_u64(80);
    let m = gen::random_ultrametric(80, 100.0, &mut rng);
    let sol = MutSolver::new().solve(&m).unwrap();
    assert!(sol.is_complete());
    assert_eq!(sol.stop, StopReason::Completed);
    assert_eq!(sol.tree.leaf_count(), 80);
    assert_eq!(sol.tree.distance_matrix().max_relative_deviation(&m), 0.0);

    let par = MutSolver::new()
        .backend(SearchBackend::Parallel { workers: 4 })
        .solve(&m)
        .unwrap();
    assert!(par.is_complete());
    assert!((par.weight - sol.weight).abs() < 1e-9);
}

/// A *perturbed* 80-taxon matrix under a small branch budget is an
/// anytime solve, not an error: it returns a feasible incumbent and
/// reports `Completed` or `BudgetExhausted`.
#[test]
fn eighty_taxa_under_branch_budget_is_anytime_not_an_error() {
    let mut rng = StdRng::seed_from_u64(81);
    let m = gen::perturbed_ultrametric(80, 50.0, 0.05, &mut rng);
    let sol = MutSolver::new().max_branches(2_000).solve(&m).unwrap();
    assert!(
        matches!(
            sol.stop,
            StopReason::Completed | StopReason::BudgetExhausted
        ),
        "unexpected stop: {:?}",
        sol.stop
    );
    assert_eq!(sol.tree.leaf_count(), 80);
    assert!(sol.tree.is_feasible_for(&m, 1e-9));
}

/// With the ceiling at `MAX_EXACT_TAXA`, a pipeline whose threshold
/// admits the whole matrix takes the undecomposed `whole` stage for
/// every n in (64, 128] instead of erroring out or forcing recursion.
#[test]
fn pipeline_no_longer_forces_decomposition_up_to_128() {
    for n in [65usize, 100, 128] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let m = gen::random_ultrametric(n, 100.0, &mut rng);
        let sol = CompactPipeline::new().threshold(128).solve(&m).unwrap();
        assert_eq!(sol.tree.leaf_count(), n, "n = {n}");
        assert!(sol.tree.is_feasible_for(&m, 1e-9), "n = {n}");
        // One group ⇒ the plain whole-matrix exact path, no stage DAG.
        if sol.groups.len() == 1 {
            assert_eq!(sol.timings.len(), 1, "n = {n}");
            assert_eq!(sol.timings[0].stage, "whole", "n = {n}");
            assert!(sol.degraded.is_empty(), "n = {n}");
        }
    }
}

/// The ceiling still exists — it just moved to the dispatcher's widest
/// width — and both the solver and the undecomposable-pipeline error
/// report it.
#[test]
fn the_new_ceiling_is_reported_by_solver_and_pipeline() {
    let m = DistanceMatrix::zeros(MAX_EXACT_TAXA + 1).unwrap();
    match MutSolver::new().solve(&m) {
        Err(MutError::TooManyTaxa { n, max }) => {
            assert_eq!(n, MAX_EXACT_TAXA + 1);
            assert_eq!(max, MAX_EXACT_TAXA);
        }
        other => panic!("expected TooManyTaxa, got {other:?}"),
    }
    // An all-zero matrix has no compact structure to decompose along, so
    // the pipeline reports NotDecomposable with the same engine limit.
    match CompactPipeline::new().solve(&m) {
        Err(MutError::NotDecomposable { max, .. }) => assert_eq!(max, MAX_EXACT_TAXA),
        other => panic!("expected NotDecomposable, got {other:?}"),
    }
}
