//! Grep-enforced configuration hygiene: `mutree_engine::plan` is the
//! *only* module allowed to read `MUTREE_*` environment variables. Every
//! other layer receives its knobs through a resolved
//! [`SolvePlan`](mutree::engine::SolvePlan), so the builder > env >
//! default precedence rules live (and are tested) in exactly one place.
//!
//! Tests that need to *mutate* the environment (save/restore around
//! `set_var`) use `std::env::var_os`, which this scan deliberately does
//! not match: writes and save/restore are fine, reads are not.

use std::path::{Path, PathBuf};

/// Recursively collects every `.rs` file in the workspace, skipping
/// build output and VCS metadata.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read workspace dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            rust_sources(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn only_plan_resolution_reads_mutree_env_vars() {
    // Assembled at runtime so this file's own source never matches.
    let needle = format!("::var(\"{}", "MUTREE_");
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    rust_sources(&root, &mut sources);
    assert!(
        sources.len() > 40,
        "workspace scan found only {} .rs files — wrong root?",
        sources.len()
    );
    let offenders: Vec<&PathBuf> = sources
        .iter()
        .filter(|path| !path.ends_with("crates/engine/src/plan.rs"))
        .filter(|path| {
            std::fs::read_to_string(path)
                .unwrap_or_default()
                .contains(&needle)
        })
        .collect();
    assert!(
        offenders.is_empty(),
        "MUTREE_* environment reads outside mutree_engine::plan: {offenders:?}\n\
         route the knob through SolveRequest / SolvePlan::resolve instead"
    );
}
