//! Differential agreement between the monomorphized leaf-bitset widths:
//! on any matrix that fits in one word (n ≤ 64), solving with forced
//! K = 1 and forced K = 2 must be *the same search* — identical optimum
//! weight, identical topology, and identical `SearchStats.branched`
//! (sequentially, the drivers expand the same nodes in the same order;
//! widening the bitset may not change a single decision).
//!
//! Widths are forced two ways: the `MutSolver::leaf_words` builder
//! (race-free, used for the matrix sweep) and the
//! `MUTREE_FORCE_LEAF_WORDS` env hook that CI pins to 2 for its wide
//! full-suite pass (exercised once here, serialized within this file).

use mutree::clustersim::ClusterSpec;
use mutree::core::{MutSolver, SearchBackend};
use mutree::distmat::{gen, DistanceMatrix};
use mutree::seqgen;
use mutree::tree::compare::robinson_foulds;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small sweep of matrix families: random metric, near-ultrametric,
/// sequence-derived, and the full-word 64-taxon boundary.
fn matrices() -> Vec<DistanceMatrix> {
    let mut out = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut rng = StdRng::seed_from_u64(seed);
        out.push(gen::uniform_metric(7 + seed as usize, 1.0, 100.0, &mut rng));
    }
    for seed in [21u64, 22] {
        let mut rng = StdRng::seed_from_u64(seed);
        out.push(gen::perturbed_ultrametric(9, 50.0, 0.1, &mut rng));
    }
    let mut rng = StdRng::seed_from_u64(31);
    out.push(seqgen::hmdna_like_matrix(10, 120, &mut rng));
    let mut rng = StdRng::seed_from_u64(64);
    out.push(gen::random_ultrametric(64, 100.0, &mut rng));
    out
}

/// Weight, topology and branch-count agreement on the sequential driver,
/// where the expansion order is deterministic.
#[test]
fn forced_widths_agree_bit_for_bit_sequentially() {
    for (mi, m) in matrices().iter().enumerate() {
        let narrow = MutSolver::new().leaf_words(1).solve(m).unwrap();
        let wide = MutSolver::new().leaf_words(2).solve(m).unwrap();
        assert!(narrow.is_complete() && wide.is_complete(), "matrix {mi}");
        assert_eq!(narrow.weight, wide.weight, "matrix {mi}: weight differs");
        assert_eq!(
            narrow.stats.branched, wide.stats.branched,
            "matrix {mi}: branch counts differ"
        );
        assert_eq!(
            narrow.stats.pruned, wide.stats.pruned,
            "matrix {mi}: prune counts differ"
        );
        assert_eq!(
            robinson_foulds(&narrow.tree, &wide.tree).unwrap(),
            0,
            "matrix {mi}: topologies differ"
        );
    }
}

/// The same agreement across the thread-parallel and simulated-cluster
/// drivers (parallel branch counts are scheduling-dependent, so there the
/// contract is optimum + completeness; the deterministic sim keeps the
/// full bit-for-bit contract).
#[test]
fn forced_widths_agree_on_all_drivers() {
    let mut rng = StdRng::seed_from_u64(77);
    let m = seqgen::hmdna_like_matrix(11, 150, &mut rng);
    let reference = MutSolver::new().leaf_words(1).solve(&m).unwrap();
    for words in [1usize, 2] {
        let par = MutSolver::new()
            .leaf_words(words)
            .backend(SearchBackend::Parallel { workers: 4 })
            .solve(&m)
            .unwrap();
        assert!(par.is_complete(), "parallel width {words}");
        assert!((par.weight - reference.weight).abs() < 1e-9);

        let sim = MutSolver::new()
            .leaf_words(words)
            .backend(SearchBackend::SimulatedCluster {
                spec: ClusterSpec::with_slaves(4),
            })
            .solve(&m)
            .unwrap();
        assert!(sim.is_complete(), "sim width {words}");
        assert!((sim.weight - reference.weight).abs() < 1e-9);
    }
    let sim1 = MutSolver::new()
        .leaf_words(1)
        .backend(SearchBackend::SimulatedCluster {
            spec: ClusterSpec::with_slaves(4),
        })
        .solve(&m)
        .unwrap();
    let sim2 = MutSolver::new()
        .leaf_words(2)
        .backend(SearchBackend::SimulatedCluster {
            spec: ClusterSpec::with_slaves(4),
        })
        .solve(&m)
        .unwrap();
    assert_eq!(sim1.stats.branched, sim2.stats.branched);
    assert_eq!(robinson_foulds(&sim1.tree, &sim2.tree).unwrap(), 0);
}

/// The env hook forces the wide path process-wide; the builder overrides
/// it when both are set, and a forced width can never narrow the dispatch
/// below what the matrix needs. Env mutation is confined to this one test
/// (integration-test files run as their own process, and the other tests
/// in this file use the builder, which wins over the env var — so even
/// concurrent execution within the file stays correct).
#[test]
fn env_hook_forces_wide_path() {
    let mut rng = StdRng::seed_from_u64(5);
    let m = gen::uniform_metric(8, 1.0, 100.0, &mut rng);
    let solver = MutSolver::new();
    // CI's wide pass pins the variable for the whole process; save and
    // restore it so this test is valid in any ambient configuration.
    let prior = std::env::var_os("MUTREE_FORCE_LEAF_WORDS");
    std::env::remove_var("MUTREE_FORCE_LEAF_WORDS");
    assert_eq!(solver.dispatch_leaf_words(m.len()), Some(1));

    std::env::set_var("MUTREE_FORCE_LEAF_WORDS", "2");
    assert_eq!(solver.dispatch_leaf_words(m.len()), Some(2));
    let forced = solver.solve(&m).unwrap();
    // Builder beats env; a narrower forced width than needed is ignored.
    assert_eq!(solver.clone().leaf_words(4).dispatch_leaf_words(8), Some(4));
    std::env::set_var("MUTREE_FORCE_LEAF_WORDS", "1");
    assert_eq!(solver.dispatch_leaf_words(65), Some(2));
    // Junk values mean no override.
    std::env::set_var("MUTREE_FORCE_LEAF_WORDS", "3");
    assert_eq!(solver.dispatch_leaf_words(m.len()), Some(1));
    match prior {
        Some(v) => std::env::set_var("MUTREE_FORCE_LEAF_WORDS", v),
        None => std::env::remove_var("MUTREE_FORCE_LEAF_WORDS"),
    }

    let baseline = MutSolver::new().leaf_words(1).solve(&m).unwrap();
    assert_eq!(forced.weight, baseline.weight);
    assert_eq!(forced.stats.branched, baseline.stats.branched);
    assert_eq!(robinson_foulds(&forced.tree, &baseline.tree).unwrap(), 0);
}
