//! Property-based tests of the core invariants, across crates.

use mutree::bnb::{SearchMode, SearchOptions};
use mutree::core::{CompactPipeline, MutProblem, MutSolver, ThreeThree};
use mutree::distmat::{gen, DistanceMatrix, MaxminPermutation};
use mutree::graph::{kruskal, prim, CompactSets, WeightedGraph};
use mutree::seqgen::{edit_distance, DnaSeq};
use mutree::tree::nj::neighbor_joining;
use mutree::tree::{cluster, newick, Linkage};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A strategy producing small random metric matrices (via closure).
fn metric_matrix(max_n: usize) -> impl Strategy<Value = DistanceMatrix> {
    (3..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::uniform_metric(n, 1.0, 100.0, &mut rng)
    })
}

/// A strategy producing small near-ultrametric matrices.
fn clustered_matrix(max_n: usize) -> impl Strategy<Value = DistanceMatrix> {
    (4..=max_n, any::<u64>(), 0u8..3).prop_map(|(n, seed, noise)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::perturbed_ultrametric(n, 50.0, noise as f64 * 0.08, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn metric_closure_yields_metrics(n in 3usize..10, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = DistanceMatrix::zeros(n).unwrap();
        for i in 1..n {
            for j in 0..i {
                m.set(i, j, rand::Rng::gen_range(&mut rng, 0.1..100.0));
            }
        }
        let c = m.metric_closure();
        prop_assert!(c.is_metric(1e-9));
        // Closure never increases distances.
        for (i, j, d) in c.pairs() {
            prop_assert!(d <= m.get(i, j) + 1e-12);
        }
    }

    #[test]
    fn maxmin_permutation_property(m in metric_matrix(10)) {
        let p = MaxminPermutation::compute(&m);
        prop_assert!(p.is_maxmin_for(&m, 1e-9));
    }

    #[test]
    fn kruskal_and_prim_agree(m in metric_matrix(12)) {
        let g = WeightedGraph::from_matrix(&m);
        let k = kruskal(&g).unwrap();
        let p = prim(&g).unwrap();
        prop_assert!((k.weight() - p.weight()).abs() < 1e-9);
    }

    #[test]
    fn compact_sets_satisfy_lemmas(m in clustered_matrix(14)) {
        let cs = CompactSets::find(&m);
        // Lemma 2: strict separation.
        for s in cs.iter() {
            prop_assert!(s.max_internal() < s.min_crossing());
        }
        // Lemma 3: laminar family.
        for a in cs.iter() {
            for b in cs.iter() {
                let inter = a.members().iter().filter(|x| b.members().contains(x)).count();
                prop_assert!(inter == 0 || a.contains_set(b) || b.contains_set(a));
            }
        }
        // Partitions really partition.
        let groups = cs.partition(5);
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..m.len()).collect::<Vec<_>>());
    }

    #[test]
    fn upgmm_is_feasible_and_bounds_the_optimum(m in metric_matrix(9)) {
        let mut t = cluster(&m, Linkage::Maximum);
        prop_assert!(t.is_feasible_for(&m, 1e-9));
        let w = t.fit_heights(&m);
        prop_assert!(t.is_feasible_for(&m, 1e-9));
        let sol = MutSolver::new().solve(&m).unwrap();
        prop_assert!(sol.weight <= w + 1e-9);
        prop_assert!(sol.tree.is_feasible_for(&m, 1e-9));
    }

    #[test]
    fn root_lower_bound_is_admissible(m in metric_matrix(9)) {
        let pm = m.maxmin_permutation().apply(&m);
        let p = MutProblem::<1>::new(&pm, ThreeThree::Off, false);
        let sol = MutSolver::new().solve(&m).unwrap();
        let root = mutree::bnb::Problem::root(&p);
        prop_assert!(root.lower_bound() <= sol.weight + 1e-9);
    }

    #[test]
    fn parallel_equals_sequential(m in metric_matrix(8)) {
        let opts = SearchOptions::new(SearchMode::BestOne);
        let _ = opts;
        let seq = MutSolver::new().solve(&m).unwrap();
        let par = MutSolver::new()
            .backend(mutree::core::SearchBackend::Parallel { workers: 3 })
            .solve(&m)
            .unwrap();
        prop_assert!((seq.weight - par.weight).abs() < 1e-6 * (1.0 + seq.weight));
    }

    #[test]
    fn simulated_equals_sequential(m in clustered_matrix(9)) {
        let seq = MutSolver::new().solve(&m).unwrap();
        let sim = MutSolver::new()
            .backend(mutree::core::SearchBackend::SimulatedCluster {
                spec: mutree::clustersim::ClusterSpec::with_slaves(4),
            })
            .solve(&m)
            .unwrap();
        prop_assert!((seq.weight - sim.weight).abs() < 1e-6 * (1.0 + seq.weight));
    }

    #[test]
    fn pipeline_is_feasible_and_dominated_by_exact(m in clustered_matrix(12)) {
        let exact = MutSolver::new().solve(&m).unwrap();
        let pipe = CompactPipeline::new().threshold(6).solve(&m).unwrap();
        prop_assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        prop_assert!(exact.weight <= pipe.weight + 1e-9);
        prop_assert_eq!(pipe.tree.leaf_count(), m.len());
    }

    #[test]
    fn solver_output_roundtrips_newick(m in metric_matrix(8)) {
        let sol = MutSolver::new().solve(&m).unwrap();
        let text = newick::to_newick(&sol.tree);
        let (parsed, _) = newick::parse_newick(&text).unwrap();
        prop_assert_eq!(parsed.leaf_count(), m.len());
        prop_assert!((parsed.weight() - sol.weight).abs() < 1e-6 * (1.0 + sol.weight));
    }

    #[test]
    fn exact_solver_reproduces_ultrametric_matrices(n in 4usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::random_ultrametric(n, 50.0, &mut rng);
        let sol = MutSolver::new().solve(&m).unwrap();
        prop_assert!(sol.tree.distance_matrix().max_relative_deviation(&m) < 1e-9);
    }

    #[test]
    fn three_three_is_a_sound_restriction(m in clustered_matrix(9)) {
        // The 3-3 rule restricts the search space, so its optimum can
        // never beat the unconstrained one — but property testing showed
        // it CAN be worse (the rule may prune every optimal topology when
        // the data strays from a strict clock), which is why the papers
        // only claim *empirical* preservation on their datasets. The
        // guaranteed properties are dominance and feasibility.
        let off = MutSolver::new().solve(&m).unwrap();
        let initial = MutSolver::new().three_three(ThreeThree::InitialOnly).solve(&m).unwrap();
        prop_assert!(initial.weight >= off.weight - 1e-6 * (1.0 + off.weight));
        prop_assert!(initial.tree.is_feasible_for(&m, 1e-9));
    }

    #[test]
    fn edit_distance_is_a_metric(a in "[ACGT]{0,30}", b in "[ACGT]{0,30}", c in "[ACGT]{0,30}") {
        let (a, b, c): (DnaSeq, DnaSeq, DnaSeq) =
            (a.parse().unwrap(), b.parse().unwrap(), c.parse().unwrap());
        let ab = edit_distance(&a, &b);
        let ba = edit_distance(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(edit_distance(&a, &a), 0);
        let ac = edit_distance(&a, &c);
        let cb = edit_distance(&c, &b);
        prop_assert!(ab <= ac + cb);
        // Length difference is a lower bound.
        prop_assert!(ab >= a.len().abs_diff(b.len()));
    }

    #[test]
    fn nj_recovers_additive_matrices(n in 4usize..12, seed in any::<u64>()) {
        // Star-lengthening an ultrametric keeps it additive but breaks
        // ultrametricity: d'(i,j) = d(i,j) + e_i + e_j.
        let mut rng = StdRng::seed_from_u64(seed);
        let um = gen::random_ultrametric(n, 40.0, &mut rng);
        let offsets: Vec<f64> = (0..n)
            .map(|_| rand::Rng::gen_range(&mut rng, 0.0..10.0))
            .collect();
        let mut m = um.clone();
        for (i, j, d) in um.pairs() {
            m.set(i, j, d + offsets[i] + offsets[j]);
        }
        prop_assert!(m.is_additive(1e-9));
        let t = neighbor_joining(&m);
        prop_assert!(t.distance_matrix().max_relative_deviation(&m) < 1e-9);
        prop_assert!(t.mean_distortion(&m) < 1e-12);
    }

    #[test]
    fn subdominant_matches_single_linkage(n in 3usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::uniform_metric(n, 1.0, 100.0, &mut rng);
        let sub = m.subdominant_ultrametric();
        prop_assert!(sub.is_ultrametric(1e-9));
        // Single-linkage tree distances equal the subdominant ultrametric.
        let t = cluster(&m, Linkage::Minimum);
        prop_assert!(t.distance_matrix().max_relative_deviation(&sub) < 1e-9);
        // And it sandwiches the exact MUT: subdominant ≤ M ≤ d_T(optimal).
        for (i, j, d) in sub.pairs() {
            prop_assert!(d <= m.get(i, j) + 1e-12);
        }
    }

    #[test]
    fn robinson_foulds_is_a_metric_on_topologies(m in metric_matrix(8)) {
        use mutree::tree::compare::robinson_foulds;
        let exact = MutSolver::new().solve(&m).unwrap();
        let upgmm = {
            let mut t = cluster(&m, Linkage::Maximum);
            t.fit_heights(&m);
            t
        };
        let upgma = cluster(&m, Linkage::Average);
        let ab = robinson_foulds(&exact.tree, &upgmm).unwrap();
        let ba = robinson_foulds(&upgmm, &exact.tree).unwrap();
        prop_assert_eq!(ab, ba); // symmetry
        prop_assert_eq!(robinson_foulds(&exact.tree, &exact.tree).unwrap(), 0); // identity
        // Triangle inequality over the three topologies.
        let bc = robinson_foulds(&upgmm, &upgma).unwrap();
        let ac = robinson_foulds(&exact.tree, &upgma).unwrap();
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn generated_trees_have_ultrametric_distance_matrices(n in 2usize..15, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = mutree::seqgen::random_coalescent(n, 1.0, &mut rng);
        let m = t.distance_matrix();
        prop_assert!(m.is_ultrametric(1e-9));
        prop_assert!((t.height() - m.max_distance() / 2.0).abs() < 1e-9);
    }
}
